//! Deep consistency audit of a [`LineageStore`] (the LineageStore half of
//! `aion-fsck`).
//!
//! Structural pass (always):
//!
//! * all four index B+Trees pass [`btree::BTree::verify`];
//! * page accounting: every allocated page is either reachable from a tree
//!   root or on the free list, and never both.
//!
//! Deep pass (`deep = true`) additionally checks the lineage invariants
//! reconstruction depends on:
//!
//! * per-entity version chains are temporally monotone (the derived
//!   validity intervals `[ts_i, ts_{i+1})` are contiguous and
//!   non-overlapping), every delta chain starts at a materialized record,
//!   chain positions increment from it, its `base_ts` is propagated
//!   unchanged, and no delta extends a tombstone;
//! * record bodies match their index (node records in the node tree, …);
//! * the out- and in-neighbour indexes hold mirror-image entry sets, and
//!   every neighbour entry agrees with the relationship index about the
//!   endpoints and liveness of its relationship at that timestamp.

use crate::entry::LineageEntry;
use crate::store::LineageStore;
use btree::BTree;
use encoding::{keys, RecordBody};
use lpg::{NodeId, RelId, Result};
use std::collections::BTreeSet;

/// One audit finding: a named invariant plus what was observed.
#[derive(Clone, Debug)]
pub struct AuditFinding {
    /// Short machine-matchable invariant name, e.g. `"chain/interval"`.
    pub check: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

fn storage_err(e: std::io::Error) -> lpg::GraphError {
    lpg::GraphError::Storage(e.to_string())
}

/// Whether `body` belongs in the node history index.
fn is_node_body(body: &RecordBody) -> bool {
    matches!(
        body,
        RecordBody::NodeFull { .. } | RecordBody::NodeDelta(_) | RecordBody::NodeDeleted
    )
}

/// Whether `body` belongs in the relationship history index.
fn is_rel_body(body: &RecordBody) -> bool {
    matches!(
        body,
        RecordBody::RelFull { .. } | RecordBody::RelDelta(_) | RecordBody::RelDeleted
    )
}

impl LineageStore {
    /// Runs the audit; see the module docs for the invariant list. Returns
    /// every violation found (empty = consistent). IO errors abort the
    /// audit; corruption is reported, never panicked on.
    pub fn audit(&self, deep: bool) -> Result<Vec<AuditFinding>> {
        let mut findings = Vec::new();

        // Structural pass: all four trees share one page file.
        let mut reachable = BTreeSet::new();
        reachable.insert(0u64); // meta page
        for (name, tree) in [
            ("nodes/structure", &self.nodes),
            ("rels/structure", &self.rels),
            ("out-neighbours/structure", &self.out_n),
            ("in-neighbours/structure", &self.in_n),
        ] {
            let report = tree.verify().map_err(storage_err)?;
            for v in &report.violations {
                findings.push(AuditFinding {
                    check: name,
                    detail: format!("{v}"),
                });
            }
            reachable.extend(report.reachable.iter().copied());
        }
        for problem in self
            .store
            .reconcile_free_list(&reachable)
            .map_err(storage_err)?
        {
            findings.push(AuditFinding {
                check: "pages/accounting",
                detail: problem,
            });
        }
        if !deep {
            return Ok(findings);
        }

        self.audit_entity_chains(&self.nodes, "node", is_node_body, &mut findings)?;
        self.audit_entity_chains(&self.rels, "rel", is_rel_body, &mut findings)?;
        self.audit_neighbour_indexes(&mut findings)?;
        Ok(findings)
    }

    /// Walks one history index checking per-entity chain invariants.
    fn audit_entity_chains(
        &self,
        tree: &BTree,
        kind: &'static str,
        body_fits: fn(&RecordBody) -> bool,
        findings: &mut Vec<AuditFinding>,
    ) -> Result<()> {
        // (entity id, ts, entry) of the previous record.
        let mut prev: Option<(u64, u64, LineageEntry)> = None;
        for item in tree.scan(&[], &[]).map_err(storage_err)? {
            let (key, value) = item.map_err(storage_err)?;
            let Some((id, ts)) = keys::decode_entity_ts_key(&key) else {
                findings.push(AuditFinding {
                    check: "chain/key",
                    detail: format!("{kind} index holds an undecodable {}-byte key", key.len()),
                });
                prev = None;
                continue;
            };
            let Some(entry) = LineageEntry::from_bytes(&value) else {
                findings.push(AuditFinding {
                    check: "chain/entry",
                    detail: format!("{kind} {id} at ts {ts}: undecodable entry"),
                });
                prev = None;
                continue;
            };
            if !body_fits(&entry.body) {
                findings.push(AuditFinding {
                    check: "chain/body-kind",
                    detail: format!(
                        "{kind} {id} at ts {ts} holds a foreign record body {:?}",
                        entry.body
                    ),
                });
            }
            let same_entity = prev.as_ref().is_some_and(|(pid, _, _)| *pid == id);
            if same_entity {
                // Interval contiguity: derived validity intervals are
                // `[ts_i, ts_{i+1})`, so any non-increasing ts means two
                // versions overlap.
                if let Some((_, pts, _)) = &prev {
                    if ts <= *pts {
                        findings.push(AuditFinding {
                            check: "chain/interval",
                            detail: format!(
                                "{kind} {id}: version at ts {ts} overlaps predecessor at ts {pts}"
                            ),
                        });
                    }
                }
            }
            if entry.pos == 0 {
                if entry.base_ts != ts {
                    findings.push(AuditFinding {
                        check: "chain/base",
                        detail: format!(
                            "{kind} {id} at ts {ts}: materialized record claims base_ts {}",
                            entry.base_ts
                        ),
                    });
                }
            } else {
                // A delta must extend a live predecessor of the same chain.
                match (same_entity, &prev) {
                    (true, Some((_, pts, pentry))) => {
                        if pentry.body.is_deleted() {
                            findings.push(AuditFinding {
                                check: "chain/tombstone",
                                detail: format!(
                                    "{kind} {id} at ts {ts}: delta extends the tombstone at ts {pts}"
                                ),
                            });
                        }
                        if entry.pos != pentry.pos + 1 {
                            findings.push(AuditFinding {
                                check: "chain/position",
                                detail: format!(
                                    "{kind} {id} at ts {ts}: chain position {} after {}",
                                    entry.pos, pentry.pos
                                ),
                            });
                        }
                        if entry.base_ts != pentry.base_ts {
                            findings.push(AuditFinding {
                                check: "chain/base",
                                detail: format!(
                                    "{kind} {id} at ts {ts}: base_ts {} diverges from chain base {}",
                                    entry.base_ts, pentry.base_ts
                                ),
                            });
                        }
                    }
                    _ => findings.push(AuditFinding {
                        check: "chain/head",
                        detail: format!(
                            "{kind} {id}: chain starts with a delta at ts {ts} (pos {})",
                            entry.pos
                        ),
                    }),
                }
            }
            prev = Some((id, ts, entry));
        }
        Ok(())
    }

    /// Checks that the out-/in-neighbour indexes mirror each other and
    /// agree with the relationship index.
    fn audit_neighbour_indexes(&self, findings: &mut Vec<AuditFinding>) -> Result<()> {
        // Normalized entries: (src, tgt, rel, ts, deleted).
        let mut out_set: BTreeSet<(u64, u64, u64, u64, bool)> = BTreeSet::new();
        let mut in_set: BTreeSet<(u64, u64, u64, u64, bool)> = BTreeSet::new();
        for (tree, set, swap, name) in [
            (&self.out_n, &mut out_set, false, "out-neighbours"),
            (&self.in_n, &mut in_set, true, "in-neighbours"),
        ] {
            for item in tree.scan(&[], &[]).map_err(storage_err)? {
                let (key, value) = item.map_err(storage_err)?;
                let Some((a, b, rel, ts)) = keys::decode_neigh_key(&key) else {
                    findings.push(AuditFinding {
                        check: "neighbours/key",
                        detail: format!("{name} index holds an undecodable {}-byte key", key.len()),
                    });
                    continue;
                };
                let Some(entry) = LineageEntry::from_bytes(&value) else {
                    findings.push(AuditFinding {
                        check: "neighbours/entry",
                        detail: format!("{name} entry for rel {} is undecodable", rel.raw()),
                    });
                    continue;
                };
                let deleted = match entry.body {
                    RecordBody::Neighbour {
                        rel: body_rel,
                        deleted,
                    } => {
                        if body_rel != rel {
                            findings.push(AuditFinding {
                                check: "neighbours/entry",
                                detail: format!(
                                    "{name} key names rel {} but the body names rel {}",
                                    rel.raw(),
                                    body_rel.raw()
                                ),
                            });
                        }
                        deleted
                    }
                    other => {
                        findings.push(AuditFinding {
                            check: "neighbours/entry",
                            detail: format!("{name} holds a foreign record body {other:?}"),
                        });
                        continue;
                    }
                };
                let (src, tgt) = if swap { (b, a) } else { (a, b) };
                set.insert((src.raw(), tgt.raw(), rel.raw(), ts, deleted));
            }
        }
        for entry in out_set.symmetric_difference(&in_set) {
            let (src, tgt, rel, ts, _) = entry;
            let side = if out_set.contains(entry) {
                "only the out-neighbour index"
            } else {
                "only the in-neighbour index"
            };
            findings.push(AuditFinding {
                check: "neighbours/mirror",
                detail: format!("rel {rel} ({src}->{tgt}) at ts {ts} appears in {side}"),
            });
        }
        // Each neighbour event must agree with the relationship index.
        for (src, tgt, rel, ts, deleted) in out_set.intersection(&in_set) {
            match self.rel_at(RelId::new(*rel), *ts) {
                Ok(Some(r)) => {
                    if *deleted {
                        findings.push(AuditFinding {
                            check: "neighbours/liveness",
                            detail: format!(
                                "neighbour tombstone for rel {rel} at ts {ts}, but the rel index has it alive"
                            ),
                        });
                    } else if r.src != NodeId::new(*src) || r.tgt != NodeId::new(*tgt) {
                        findings.push(AuditFinding {
                            check: "neighbours/endpoints",
                            detail: format!(
                                "neighbour entry says rel {rel} is {src}->{tgt} at ts {ts}, rel index says {}->{}",
                                r.src.raw(),
                                r.tgt.raw()
                            ),
                        });
                    }
                }
                Ok(None) => {
                    if !*deleted {
                        findings.push(AuditFinding {
                            check: "neighbours/liveness",
                            detail: format!(
                                "neighbour addition for rel {rel} at ts {ts}, but the rel index has no live record"
                            ),
                        });
                    }
                }
                Err(e) => findings.push(AuditFinding {
                    check: "neighbours/liveness",
                    detail: format!("rel {rel} at ts {ts} is unreadable: {e}"),
                }),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LineageStoreConfig;
    use lpg::{PropertyValue, StrId, Update};
    use tempfile::tempdir;

    fn seed(ls: &LineageStore) {
        for i in 0..40u64 {
            ls.apply_commit(
                i * 3 + 1,
                &[Update::AddNode {
                    id: NodeId::new(i),
                    labels: vec![StrId::new(0)],
                    props: vec![],
                }],
            )
            .unwrap();
            if i > 0 {
                ls.apply_commit(
                    i * 3 + 2,
                    &[Update::AddRel {
                        id: RelId::new(i),
                        src: NodeId::new(i - 1),
                        tgt: NodeId::new(i),
                        label: Some(StrId::new(1)),
                        props: vec![],
                    }],
                )
                .unwrap();
            }
            // Delta chains past the materialization threshold.
            ls.apply_commit(
                i * 3 + 3,
                &[Update::SetNodeProp {
                    id: NodeId::new(i),
                    key: StrId::new(2),
                    value: PropertyValue::Int(i as i64),
                }],
            )
            .unwrap();
        }
        // A deletion so tombstone handling is exercised.
        ls.apply_commit(200, &[Update::DeleteRel { id: RelId::new(5) }])
            .unwrap();
        ls.sync().unwrap();
    }

    #[test]
    fn fresh_store_audits_clean() {
        let dir = tempdir().unwrap();
        let ls =
            LineageStore::open(dir.path().join("l.db"), LineageStoreConfig::default()).unwrap();
        seed(&ls);
        let findings = ls.audit(true).unwrap();
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn one_sided_neighbour_entry_detected() {
        let dir = tempdir().unwrap();
        let ls =
            LineageStore::open(dir.path().join("l.db"), LineageStoreConfig::default()).unwrap();
        seed(&ls);
        // Inject an out-neighbour entry with no in-neighbour mirror.
        let entry = LineageEntry::full(
            777,
            RecordBody::Neighbour {
                rel: RelId::new(999),
                deleted: false,
            },
        );
        ls.out_n
            .insert(
                &keys::neigh_key(NodeId::new(1), NodeId::new(2), RelId::new(999), 777),
                &entry.to_bytes(),
            )
            .unwrap();
        let findings = ls.audit(true).unwrap();
        assert!(findings.iter().any(|f| f.check == "neighbours/mirror"));
    }
}
