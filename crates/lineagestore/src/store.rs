//! The four-index LineageStore with chain-aware reconstruction.

use crate::entry::LineageEntry;
use btree::BTree;
use encoding::{keys, RecordBody};
use lpg::{
    EntityDelta, Graph, GraphError, Interval, Node, NodeId, RelId, Relationship, Result, Timestamp,
    Update, Version,
};
use pagestore::PageStore;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;
use vfs::VfsRef;

const SLOT_NODES: usize = 0;
const SLOT_RELS: usize = 1;
const SLOT_OUT: usize = 2;
const SLOT_IN: usize = 3;
const SLOT_WATERMARK: usize = 7;

/// Tuning knobs for a [`LineageStore`].
#[derive(Clone, Debug)]
pub struct LineageStoreConfig {
    /// Pages held by the index page cache.
    pub cache_pages: usize,
    /// Materialize a full entity once a delta chain would reach this length
    /// (Sec. 6.5; the paper adopts 4). `None` never materializes.
    pub chain_threshold: Option<u32>,
    /// File system the paged file is opened on.
    pub vfs: VfsRef,
    /// Verify the paged file against its checksum sidecar at open and fail
    /// with `Storage` on mismatch. Defaults to `false` here (tools open
    /// lineage files directly, corrupt or not); `Aion::open` enables it
    /// and rebuilds the store from the TimeStore on failure.
    pub verify_pages: bool,
}

impl Default for LineageStoreConfig {
    fn default() -> Self {
        LineageStoreConfig {
            cache_pages: 1024,
            chain_threshold: Some(4),
            vfs: VfsRef::std(),
            verify_pages: false,
        }
    }
}

/// Ingest / lookup counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineageStoreStats {
    /// Updates applied.
    pub updates: u64,
    /// Full records written because a chain hit the threshold.
    pub materializations: u64,
    /// Delta records written.
    pub deltas: u64,
    /// Entity versions reconstructed through a delta chain.
    pub chain_reconstructions: u64,
}

pub(crate) struct Metrics {
    pub(crate) commits_applied: Arc<obs::Counter>,
    pub(crate) updates_applied: Arc<obs::Counter>,
    pub(crate) expands: Arc<obs::Counter>,
    pub(crate) expand_fanout: Arc<obs::Histogram>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            commits_applied: obs::counter("lineagestore.commits.applied"),
            updates_applied: obs::counter("lineagestore.updates.applied"),
            expands: obs::counter("lineagestore.expands"),
            expand_fanout: obs::histogram("lineagestore.expand.fanout"),
        }
    }
}

/// Fine-grained temporal storage: history indexed by entity id (Sec. 4.4).
pub struct LineageStore {
    pub(crate) store: Arc<PageStore>,
    pub(crate) nodes: BTree,
    pub(crate) rels: BTree,
    pub(crate) out_n: BTree,
    pub(crate) in_n: BTree,
    threshold: Option<u32>,
    stats: Mutex<LineageStoreStats>,
    pub(crate) metrics: Metrics,
}

impl LineageStore {
    /// Opens (or creates) a LineageStore backed by one paged file at `path`.
    pub fn open<P: AsRef<Path>>(path: P, config: LineageStoreConfig) -> Result<LineageStore> {
        let store = Arc::new(PageStore::open_with_vfs(
            &config.vfs,
            path.as_ref(),
            config.cache_pages,
            config.verify_pages,
        )?);
        let open_tree = |slot| BTree::open(store.clone(), slot).map_err(io_err);
        Ok(LineageStore {
            nodes: open_tree(SLOT_NODES)?,
            rels: open_tree(SLOT_RELS)?,
            out_n: open_tree(SLOT_OUT)?,
            in_n: open_tree(SLOT_IN)?,
            store,
            threshold: config.chain_threshold,
            stats: Mutex::new(LineageStoreStats::default()),
            metrics: Metrics::new(),
        })
    }

    /// High-water mark: every update with `ts <= applied_ts()` has been
    /// applied. The background cascade (Sec. 5.1 stage 2) advances this;
    /// queries above it fall back to the TimeStore.
    pub fn applied_ts(&self) -> Timestamp {
        let raw = self.store.root(SLOT_WATERMARK);
        if raw == u64::MAX {
            0
        } else {
            raw
        }
    }

    /// Persists the watermark after a batch of updates has been applied.
    pub fn set_applied_ts(&self, ts: Timestamp) {
        self.store.set_root(SLOT_WATERMARK, ts);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LineageStoreStats {
        *self.stats.lock()
    }

    /// On-disk footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.store.size_bytes()
    }

    /// Flushes all indexes.
    pub fn sync(&self) -> Result<()> {
        self.store.sync()?;
        Ok(())
    }

    // ------------------------------------------------------------- ingestion

    /// Applies one committed transaction's updates at timestamp `ts` and
    /// advances the watermark.
    pub fn apply_commit(&self, ts: Timestamp, updates: &[Update]) -> Result<()> {
        self.metrics.commits_applied.inc();
        for u in updates {
            self.apply_update(ts, u)?;
        }
        self.set_applied_ts(ts);
        Ok(())
    }

    /// Applies a single update at timestamp `ts`.
    pub fn apply_update(&self, ts: Timestamp, op: &Update) -> Result<()> {
        self.stats.lock().updates += 1;
        self.metrics.updates_applied.inc();
        match op {
            Update::AddNode { id, labels, props } => self.put_full(
                &self.nodes,
                id.raw(),
                ts,
                RecordBody::NodeFull {
                    labels: labels.clone(),
                    props: props.clone(),
                },
            ),
            Update::DeleteNode { id } => {
                self.put_full(&self.nodes, id.raw(), ts, RecordBody::NodeDeleted)
            }
            Update::AddRel {
                id,
                src,
                tgt,
                label,
                props,
            } => {
                self.put_full(
                    &self.rels,
                    id.raw(),
                    ts,
                    RecordBody::RelFull {
                        src: *src,
                        tgt: *tgt,
                        label: *label,
                        props: props.clone(),
                    },
                )?;
                self.put_neighbours(*src, *tgt, *id, ts, false)
            }
            Update::DeleteRel { id } => {
                // The tombstone needs the endpoints for the neighbour indexes.
                let rel = self.rel_at(*id, ts)?.ok_or(GraphError::RelNotFound(*id))?;
                self.put_full(&self.rels, id.raw(), ts, RecordBody::RelDeleted)?;
                self.put_neighbours(rel.src, rel.tgt, *id, ts, true)
            }
            modify => {
                let Some(delta) = EntityDelta::from_update(modify) else {
                    return Err(GraphError::CorruptRecord(format!(
                        "update at ts {ts} is neither an add/delete nor a modify operation"
                    )));
                };
                // The entity id names the tree; a modify update always
                // carries the same kind as its entity id, so a single
                // exhaustive match replaces the old `unreachable!` arms.
                let (tree, raw, body_of): (&BTree, u64, fn(EntityDelta) -> RecordBody) =
                    match modify.entity() {
                        lpg::EntityId::Rel(RelId(raw)) => (&self.rels, raw, RecordBody::RelDelta),
                        lpg::EntityId::Node(NodeId(raw)) => {
                            (&self.nodes, raw, RecordBody::NodeDelta)
                        }
                    };
                self.put_delta(tree, raw, ts, delta, body_of)
            }
        }
    }

    fn put_full(&self, tree: &BTree, id: u64, ts: Timestamp, body: RecordBody) -> Result<()> {
        let entry = LineageEntry::full(ts, body);
        tree.insert(&keys::entity_ts_key(id, ts), &entry.to_bytes())
            .map_err(io_err)
    }

    fn put_neighbours(
        &self,
        src: NodeId,
        tgt: NodeId,
        rel: RelId,
        ts: Timestamp,
        deleted: bool,
    ) -> Result<()> {
        let body = RecordBody::Neighbour { rel, deleted };
        let entry = LineageEntry::full(ts, body);
        let bytes = entry.to_bytes();
        self.out_n
            .insert(&keys::neigh_key(src, tgt, rel, ts), &bytes)
            .map_err(io_err)?;
        self.in_n
            .insert(&keys::neigh_key(tgt, src, rel, ts), &bytes)
            .map_err(io_err)
    }

    fn put_delta(
        &self,
        tree: &BTree,
        id: u64,
        ts: Timestamp,
        delta: EntityDelta,
        body_of: fn(EntityDelta) -> RecordBody,
    ) -> Result<()> {
        // Find the previous version to extend its chain.
        let prev = self.floor_entry(tree, id, ts)?;
        let Some((prev_ts, prev_entry)) = prev else {
            return Err(GraphError::Storage(format!(
                "delta for unknown entity {id} at ts {ts}"
            )));
        };
        if prev_entry.body.is_deleted() {
            return Err(GraphError::Storage(format!(
                "delta for deleted entity {id} at ts {ts}"
            )));
        }
        // Several updates in one transaction share a timestamp; coalesce
        // them into a single record so each `(id, ts)` key stays unique.
        if prev_ts == ts {
            let merged = match prev_entry.body.clone() {
                RecordBody::NodeFull { labels, props } => {
                    let mut node = Node::new(NodeId::new(id), labels, props);
                    delta.apply_to_node(&mut node);
                    RecordBody::NodeFull {
                        labels: node.labels,
                        props: node.props,
                    }
                }
                RecordBody::RelFull {
                    src,
                    tgt,
                    label,
                    props,
                } => {
                    let mut rel = Relationship::new(RelId::new(id), src, tgt, label, props);
                    delta.apply_to_rel(&mut rel);
                    RecordBody::RelFull {
                        src: rel.src,
                        tgt: rel.tgt,
                        label: rel.label,
                        props: rel.props,
                    }
                }
                RecordBody::NodeDelta(mut prev_d) => {
                    prev_d.merge(&delta);
                    RecordBody::NodeDelta(prev_d)
                }
                RecordBody::RelDelta(mut prev_d) => {
                    prev_d.merge(&delta);
                    RecordBody::RelDelta(prev_d)
                }
                other => {
                    return Err(GraphError::Storage(format!(
                        "cannot coalesce delta over {other:?}"
                    )))
                }
            };
            let entry = LineageEntry {
                base_ts: prev_entry.base_ts,
                pos: prev_entry.pos,
                body: merged,
            };
            return tree
                .insert(&keys::entity_ts_key(id, ts), &entry.to_bytes())
                .map_err(io_err);
        }
        let next_pos = prev_entry.pos + 1;
        let materialize = self.threshold.is_some_and(|k| next_pos >= k);
        if materialize {
            // Reconstruct the current state, apply the delta, store full.
            let full = self.reconstruct(tree, id, prev_ts, &prev_entry)?;
            let body = match full {
                RecordBody::NodeFull { labels, props } => {
                    let mut node = Node::new(NodeId::new(id), labels, props);
                    delta.apply_to_node(&mut node);
                    RecordBody::NodeFull {
                        labels: node.labels,
                        props: node.props,
                    }
                }
                RecordBody::RelFull {
                    src,
                    tgt,
                    label,
                    props,
                } => {
                    let mut rel = Relationship::new(RelId::new(id), src, tgt, label, props);
                    delta.apply_to_rel(&mut rel);
                    RecordBody::RelFull {
                        src: rel.src,
                        tgt: rel.tgt,
                        label: rel.label,
                        props: rel.props,
                    }
                }
                other => {
                    return Err(GraphError::Storage(format!(
                        "unexpected reconstruction result {other:?}"
                    )))
                }
            };
            self.stats.lock().materializations += 1;
            self.put_full(tree, id, ts, body)
        } else {
            self.stats.lock().deltas += 1;
            let entry = LineageEntry::delta(prev_entry.base_ts, next_pos, body_of(delta));
            tree.insert(&keys::entity_ts_key(id, ts), &entry.to_bytes())
                .map_err(io_err)
        }
    }

    // --------------------------------------------------------- reconstruction

    /// Latest entry for `id` at or before `ts`.
    fn floor_entry(
        &self,
        tree: &BTree,
        id: u64,
        ts: Timestamp,
    ) -> Result<Option<(Timestamp, LineageEntry)>> {
        let Some((key, value)) = tree
            .seek_floor(&keys::entity_ts_key(id, ts))
            .map_err(io_err)?
        else {
            return Ok(None);
        };
        let (kid, kts) = keys::decode_entity_ts_key(&key)
            .ok_or_else(|| GraphError::Storage("bad lineage key".into()))?;
        if kid != id {
            return Ok(None);
        }
        let entry = LineageEntry::from_bytes(&value)
            .ok_or_else(|| GraphError::Storage("bad lineage entry".into()))?;
        Ok(Some((kts, entry)))
    }

    /// Materializes the full record for the version written at `at_ts` by
    /// replaying its bounded delta chain `[(id, base_ts), (id, at_ts)]`.
    fn reconstruct(
        &self,
        tree: &BTree,
        id: u64,
        at_ts: Timestamp,
        entry: &LineageEntry,
    ) -> Result<RecordBody> {
        if entry.pos == 0 {
            return Ok(entry.body.clone());
        }
        self.stats.lock().chain_reconstructions += 1;
        let low = keys::entity_ts_key(id, entry.base_ts);
        let high = keys::entity_ts_key(id, at_ts.saturating_add(1));
        let mut current: Option<RecordBody> = None;
        for item in tree.scan(&low, &high).map_err(io_err)? {
            let (_, value) = item.map_err(io_err)?;
            let e = LineageEntry::from_bytes(&value)
                .ok_or_else(|| GraphError::Storage("bad lineage entry".into()))?;
            current = Some(apply_entry(current, e.body, id)?);
        }
        current.ok_or_else(|| GraphError::Storage(format!("empty chain for entity {id}")))
    }

    // ---------------------------------------------------------- point queries

    /// The node state valid at `ts` (None if absent/deleted).
    pub fn node_at(&self, id: NodeId, ts: Timestamp) -> Result<Option<Node>> {
        let Some((kts, entry)) = self.floor_entry(&self.nodes, id.raw(), ts)? else {
            return Ok(None);
        };
        if entry.body.is_deleted() {
            return Ok(None);
        }
        match self.reconstruct(&self.nodes, id.raw(), kts, &entry)? {
            RecordBody::NodeFull { labels, props } => Ok(Some(Node::new(id, labels, props))),
            other => Err(GraphError::Storage(format!("node index held {other:?}"))),
        }
    }

    /// The relationship state valid at `ts`.
    pub fn rel_at(&self, id: RelId, ts: Timestamp) -> Result<Option<Relationship>> {
        let Some((kts, entry)) = self.floor_entry(&self.rels, id.raw(), ts)? else {
            return Ok(None);
        };
        if entry.body.is_deleted() {
            return Ok(None);
        }
        match self.reconstruct(&self.rels, id.raw(), kts, &entry)? {
            RecordBody::RelFull {
                src,
                tgt,
                label,
                props,
            } => Ok(Some(Relationship::new(id, src, tgt, label, props))),
            other => Err(GraphError::Storage(format!("rel index held {other:?}"))),
        }
    }

    /// `getNode(nodeId, start, end)`: version history over `[start, end)`,
    /// clipped to the window (Table 1).
    pub fn node_history(
        &self,
        id: NodeId,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Version<Node>>> {
        let make = |id: u64, body: RecordBody| -> Result<Node> {
            match body {
                RecordBody::NodeFull { labels, props } => {
                    Ok(Node::new(NodeId::new(id), labels, props))
                }
                other => Err(GraphError::Storage(format!("node index held {other:?}"))),
            }
        };
        self.history(&self.nodes, id.raw(), start, end, make)
    }

    /// `getRelationship(relId, start, end)`: version history over
    /// `[start, end)` (Table 1).
    pub fn rel_history(
        &self,
        id: RelId,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Version<Relationship>>> {
        let make = |id: u64, body: RecordBody| -> Result<Relationship> {
            match body {
                RecordBody::RelFull {
                    src,
                    tgt,
                    label,
                    props,
                } => Ok(Relationship::new(RelId::new(id), src, tgt, label, props)),
                other => Err(GraphError::Storage(format!("rel index held {other:?}"))),
            }
        };
        self.history(&self.rels, id.raw(), start, end, make)
    }

    fn history<T: Clone>(
        &self,
        tree: &BTree,
        id: u64,
        start: Timestamp,
        end: Timestamp,
        make: impl Fn(u64, RecordBody) -> Result<T>,
    ) -> Result<Vec<Version<T>>> {
        if start > end {
            return Err(GraphError::InvalidTimeRange);
        }
        let end = end.max(start.saturating_add(1)); // point query: [t, t+1)
        let mut versions: Vec<Version<T>> = Vec::new();
        // State at window start.
        let mut current: Option<RecordBody> = None;
        if let Some((kts, entry)) = self.floor_entry(tree, id, start)? {
            if !entry.body.is_deleted() {
                current = Some(self.reconstruct(tree, id, kts, &entry)?);
            }
        }
        let mut open_since = start;
        // Forward entries inside the window.
        let low = keys::entity_ts_key(id, start.saturating_add(1));
        let high = keys::entity_ts_key(id, end);
        for item in tree.scan(&low, &high).map_err(io_err)? {
            let (key, value) = item.map_err(io_err)?;
            let (_, ts) = keys::decode_entity_ts_key(&key)
                .ok_or_else(|| GraphError::Storage("bad lineage key".into()))?;
            let entry = LineageEntry::from_bytes(&value)
                .ok_or_else(|| GraphError::Storage("bad lineage entry".into()))?;
            // Close the open version. A racing writer can split pages
            // mid-scan and replay a key at or behind `open_since`; such a
            // version is zero-width at best, so drop it instead of
            // constructing an invalid interval.
            let prior = current.take();
            if let Some(body) = prior.clone() {
                if ts > open_since {
                    versions.push(Version {
                        valid: Interval::new(open_since, ts),
                        data: make(id, body)?,
                    });
                }
            }
            current = if entry.body.is_deleted() {
                None
            } else if entry.pos == 0 {
                Some(entry.body)
            } else {
                match prior {
                    // Common case: extend the state we just closed.
                    Some(p) => Some(apply_entry(Some(p), entry.body, id)?),
                    // A delta whose base precedes the window: bounded replay.
                    None => Some(self.reconstruct(tree, id, ts, &entry)?),
                }
            };
            open_since = open_since.max(ts);
        }
        if let Some(body) = current {
            versions.push(Version {
                valid: Interval::new(open_since, end.max(open_since + 1)),
                data: make(id, body)?,
            });
        }
        Ok(versions)
    }

    // ----------------------------------------------- neighbourhood queries

    /// The relationships incident to `node` that are valid at `ts`, in the
    /// given direction (Alg. 1 line 8). `Both` deduplicates self-loops.
    pub fn rels_at(
        &self,
        node: NodeId,
        dir: lpg::Direction,
        ts: Timestamp,
    ) -> Result<Vec<Relationship>> {
        let mut rel_ids = Vec::new();
        if dir.includes_out() {
            self.valid_neighbour_rels(&self.out_n, node, ts, &mut rel_ids)?;
        }
        if dir.includes_in() {
            self.valid_neighbour_rels(&self.in_n, node, ts, &mut rel_ids)?;
        }
        rel_ids.sort_unstable();
        rel_ids.dedup();
        let mut out = Vec::with_capacity(rel_ids.len());
        for rid in rel_ids {
            if let Some(rel) = self.rel_at(rid, ts)? {
                out.push(rel);
            }
        }
        Ok(out)
    }

    /// Scans one neighbour index for `anchor`, collecting relationships
    /// whose latest entry at or before `ts` is an addition.
    fn valid_neighbour_rels(
        &self,
        tree: &BTree,
        anchor: NodeId,
        ts: Timestamp,
        out: &mut Vec<RelId>,
    ) -> Result<()> {
        let (low, high) = keys::neigh_range(anchor);
        let mut current: Option<(RelId, bool)> = None; // (rel, alive)
        for item in tree.scan(&low, &high).map_err(io_err)? {
            let (key, value) = item.map_err(io_err)?;
            let (_, _, rel, ets) = keys::decode_neigh_key(&key)
                .ok_or_else(|| GraphError::Storage("bad neigh key".into()))?;
            let entry = LineageEntry::from_bytes(&value)
                .ok_or_else(|| GraphError::Storage("bad neigh entry".into()))?;
            let deleted = entry.body.is_deleted();
            match current {
                Some((cur, _)) if cur == rel => {
                    if ets <= ts {
                        current = Some((rel, !deleted));
                    }
                }
                _ => {
                    // Flush the previous group.
                    if let Some((cur, true)) = current {
                        out.push(cur);
                    }
                    current = Some((rel, ets <= ts && !deleted));
                    if ets > ts {
                        current = Some((rel, false));
                    }
                }
            }
        }
        if let Some((cur, true)) = current {
            out.push(cur);
        }
        Ok(())
    }

    /// `getRelationships(nodeId, direction, start, end)`: the history of
    /// every relationship that touched `node` during `[start, end)`
    /// (Table 1), one version list per relationship.
    pub fn rels_history(
        &self,
        node: NodeId,
        dir: lpg::Direction,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Vec<Version<Relationship>>>> {
        let mut rel_ids = Vec::new();
        let collect = |tree: &BTree, out: &mut Vec<RelId>| -> Result<()> {
            let (low, high) = keys::neigh_range(node);
            for item in tree.scan(&low, &high).map_err(io_err)? {
                let (key, _) = item.map_err(io_err)?;
                let (_, _, rel, _) = keys::decode_neigh_key(&key)
                    .ok_or_else(|| GraphError::Storage("bad neigh key".into()))?;
                out.push(rel);
            }
            Ok(())
        };
        if dir.includes_out() {
            collect(&self.out_n, &mut rel_ids)?;
        }
        if dir.includes_in() {
            collect(&self.in_n, &mut rel_ids)?;
        }
        rel_ids.sort_unstable();
        rel_ids.dedup();
        let mut out = Vec::new();
        for rid in rel_ids {
            let hist = self.rel_history(rid, start, end)?;
            if !hist.is_empty() {
                out.push(hist);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------- global queries

    /// Every node id that ever existed (full index scan).
    pub fn all_node_ids(&self) -> Result<Vec<NodeId>> {
        let mut out = Vec::new();
        for item in self.nodes.scan(&[], &[]).map_err(io_err)? {
            let (key, _) = item.map_err(io_err)?;
            let (id, _) = keys::decode_entity_ts_key(&key)
                .ok_or_else(|| GraphError::Storage("bad lineage key".into()))?;
            if out.last() != Some(&NodeId::new(id)) {
                out.push(NodeId::new(id));
            }
        }
        Ok(out)
    }

    /// Full-graph reconstruction at `ts` via an all-entities scan — the
    /// expensive global path of fine-grained storage the paper contrasts
    /// with TimeStore ("their processing cost depends solely on the graph
    /// history size", Sec. 4.4).
    pub fn snapshot_at(&self, ts: Timestamp) -> Result<Graph> {
        let mut g = Graph::new();
        // Nodes first so relationships validate.
        for id in self.all_node_ids()? {
            if let Some(n) = self.node_at(id, ts)? {
                g.apply(&Update::AddNode {
                    id,
                    labels: n.labels,
                    props: n.props,
                })?;
            }
        }
        let mut last: Option<RelId> = None;
        let mut rel_ids = Vec::new();
        for item in self.rels.scan(&[], &[]).map_err(io_err)? {
            let (key, _) = item.map_err(io_err)?;
            let (id, _) = keys::decode_entity_ts_key(&key)
                .ok_or_else(|| GraphError::Storage("bad lineage key".into()))?;
            if last != Some(RelId::new(id)) {
                rel_ids.push(RelId::new(id));
                last = Some(RelId::new(id));
            }
        }
        for rid in rel_ids {
            if let Some(r) = self.rel_at(rid, ts)? {
                g.apply(&Update::AddRel {
                    id: rid,
                    src: r.src,
                    tgt: r.tgt,
                    label: r.label,
                    props: r.props,
                })?;
            }
        }
        Ok(g)
    }
}

/// Applies one record body on top of an optional current full state.
fn apply_entry(current: Option<RecordBody>, body: RecordBody, id: u64) -> Result<RecordBody> {
    match body {
        full @ (RecordBody::NodeFull { .. } | RecordBody::RelFull { .. }) => Ok(full),
        RecordBody::NodeDeleted | RecordBody::RelDeleted => Err(GraphError::Storage(format!(
            "tombstone inside chain for {id}"
        ))),
        RecordBody::NodeDelta(d) => match current {
            Some(RecordBody::NodeFull { labels, props }) => {
                let mut node = Node::new(NodeId::new(id), labels, props);
                d.apply_to_node(&mut node);
                Ok(RecordBody::NodeFull {
                    labels: node.labels,
                    props: node.props,
                })
            }
            other => Err(GraphError::Storage(format!(
                "node delta over {other:?} for {id}"
            ))),
        },
        RecordBody::RelDelta(d) => match current {
            Some(RecordBody::RelFull {
                src,
                tgt,
                label,
                props,
            }) => {
                let mut rel = Relationship::new(RelId::new(id), src, tgt, label, props);
                d.apply_to_rel(&mut rel);
                Ok(RecordBody::RelFull {
                    src: rel.src,
                    tgt: rel.tgt,
                    label: rel.label,
                    props: rel.props,
                })
            }
            other => Err(GraphError::Storage(format!(
                "rel delta over {other:?} for {id}"
            ))),
        },
        RecordBody::Neighbour { .. } => Err(GraphError::Storage(
            "neighbour record in entity chain".into(),
        )),
    }
}

fn io_err(e: std::io::Error) -> GraphError {
    GraphError::Storage(e.to_string())
}
