//! Algorithm 1: the `expand` method — n-hop neighbourhood retrieval at a
//! time point, plus the stepped variant over a window (Table 1).

use crate::store::LineageStore;
use lpg::{Direction, GraphError, Node, NodeId, Result, Timestamp};
use std::collections::HashSet;
use std::collections::VecDeque;

/// One discovered node with the hop at which it was first reached.
#[derive(Clone, PartialEq, Debug)]
pub struct ExpandHit {
    /// The neighbour node.
    pub node: Node,
    /// Hop distance from the start node (1 = direct neighbour).
    pub hop: u32,
}

impl LineageStore {
    /// Algorithm 1 — expand `id` by `hops` in direction `d` at timestamp
    /// `t`. Returns every reached node tagged with its hop distance.
    pub fn expand(
        &self,
        id: NodeId,
        dir: Direction,
        hops: u32,
        t: Timestamp,
    ) -> Result<Vec<ExpandHit>> {
        self.metrics.expands.inc();
        if self.node_at(id, t)?.is_none() {
            return Err(GraphError::NodeNotFound(id));
        }
        let mut result = Vec::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new(); // Q in Alg. 1
        let mut seen: HashSet<NodeId> = HashSet::new(); // global frontier set
        queue.push_back(id);
        seen.insert(id);
        for hop in 1..=hops {
            let qsize = queue.len();
            if qsize == 0 {
                break;
            }
            for _ in 0..qsize {
                let Some(cid) = queue.pop_front() else { break };
                let rels = self.rels_at(cid, dir, t)?; // line 8
                for r in rels {
                    // Neighbour id depends on the direction of traversal.
                    let n_id = match dir {
                        Direction::Outgoing => r.tgt,
                        Direction::Incoming => r.src,
                        Direction::Both => {
                            if r.src == cid {
                                r.tgt
                            } else {
                                r.src
                            }
                        }
                    };
                    if seen.insert(n_id) {
                        if let Some(node) = self.node_at(n_id, t)? {
                            result.push(ExpandHit { node, hop }); // line 12
                            queue.push_back(n_id);
                        }
                    }
                }
            }
        }
        self.metrics.expand_fanout.record(result.len() as u64);
        Ok(result)
    }

    /// The stepped `expand(nodeId, direction, hops, start, end, step)` of
    /// Table 1: runs Algorithm 1 at `start, start+step, …` within
    /// `[start, end)`, yielding one result set per time point.
    pub fn expand_series(
        &self,
        id: NodeId,
        dir: Direction,
        hops: u32,
        start: Timestamp,
        end: Timestamp,
        step: u64,
    ) -> Result<Vec<(Timestamp, Vec<ExpandHit>)>> {
        if start >= end || step == 0 {
            return Err(GraphError::InvalidTimeRange);
        }
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            let hits = match self.expand(id, dir, hops, t) {
                Ok(h) => h,
                Err(GraphError::NodeNotFound(_)) => Vec::new(), // not alive yet
                Err(e) => return Err(e),
            };
            out.push((t, hits));
            match t.checked_add(step) {
                Some(next) => t = next,
                None => break,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{LineageStore, LineageStoreConfig};
    use lpg::{RelId, Update};
    use tempfile::tempdir;

    fn store() -> (tempfile::TempDir, LineageStore) {
        let dir = tempdir().unwrap();
        let s = LineageStore::open(dir.path().join("l.db"), LineageStoreConfig::default()).unwrap();
        (dir, s)
    }

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: NodeId::new(i),
            labels: vec![],
            props: vec![],
        }
    }

    fn add_rel(id: u64, src: u64, tgt: u64) -> Update {
        Update::AddRel {
            id: RelId::new(id),
            src: NodeId::new(src),
            tgt: NodeId::new(tgt),
            label: None,
            props: vec![],
        }
    }

    /// Chain 0 → 1 → 2 → 3 plus a back edge 2 → 0.
    fn build_chain(s: &LineageStore) {
        for i in 0..4 {
            s.apply_update(i + 1, &add_node(i)).unwrap();
        }
        s.apply_update(10, &add_rel(0, 0, 1)).unwrap();
        s.apply_update(11, &add_rel(1, 1, 2)).unwrap();
        s.apply_update(12, &add_rel(2, 2, 3)).unwrap();
        s.apply_update(13, &add_rel(3, 2, 0)).unwrap();
    }

    #[test]
    fn expand_counts_hops_outgoing() {
        let (_d, s) = store();
        build_chain(&s);
        let hits = s
            .expand(NodeId::new(0), Direction::Outgoing, 3, 20)
            .unwrap();
        let mut by_hop: Vec<(u64, u32)> = hits.iter().map(|h| (h.node.id.raw(), h.hop)).collect();
        by_hop.sort_unstable();
        assert_eq!(by_hop, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn expand_respects_time() {
        let (_d, s) = store();
        build_chain(&s);
        // At ts 10 only rel 0 exists.
        let hits = s
            .expand(NodeId::new(0), Direction::Outgoing, 3, 10)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].node.id, NodeId::new(1));
        // Before any relationship: empty.
        assert!(s
            .expand(NodeId::new(0), Direction::Outgoing, 3, 5)
            .unwrap()
            .is_empty());
        // Before the node existed: error.
        assert!(matches!(
            s.expand(NodeId::new(0), Direction::Outgoing, 1, 0),
            Err(GraphError::NodeNotFound(_))
        ));
    }

    #[test]
    fn expand_incoming_and_both() {
        let (_d, s) = store();
        build_chain(&s);
        let inc = s
            .expand(NodeId::new(0), Direction::Incoming, 1, 20)
            .unwrap();
        assert_eq!(inc.len(), 1);
        assert_eq!(inc[0].node.id, NodeId::new(2));
        let both = s.expand(NodeId::new(0), Direction::Both, 1, 20).unwrap();
        let mut ids: Vec<u64> = both.iter().map(|h| h.node.id.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn expand_does_not_revisit() {
        let (_d, s) = store();
        build_chain(&s);
        // The cycle 0→1→2→0 must not produce duplicates.
        let hits = s.expand(NodeId::new(0), Direction::Both, 8, 20).unwrap();
        let mut ids: Vec<u64> = hits.iter().map(|h| h.node.id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), hits.len(), "no duplicates");
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn expand_after_deletion_stops_at_gap() {
        let (_d, s) = store();
        build_chain(&s);
        s.apply_update(15, &Update::DeleteRel { id: RelId::new(1) })
            .unwrap();
        let hits = s
            .expand(NodeId::new(0), Direction::Outgoing, 3, 20)
            .unwrap();
        assert_eq!(hits.len(), 1, "path beyond deleted rel unreachable");
        // Time travel back before the deletion still sees the full chain.
        let hits = s
            .expand(NodeId::new(0), Direction::Outgoing, 3, 14)
            .unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn expand_series_steps_through_time() {
        let (_d, s) = store();
        build_chain(&s);
        let series = s
            .expand_series(NodeId::new(0), Direction::Outgoing, 3, 9, 15, 2)
            .unwrap();
        assert_eq!(series.len(), 3); // t = 9, 11, 13
        assert_eq!(series[0].1.len(), 0);
        assert_eq!(series[1].1.len(), 2);
        assert_eq!(series[2].1.len(), 3);
        assert!(s
            .expand_series(NodeId::new(0), Direction::Outgoing, 1, 9, 9, 1)
            .is_err());
    }
}
