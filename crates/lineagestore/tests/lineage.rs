//! LineageStore correctness: history reconstruction, delta-chain
//! materialization strategies, and equivalence with the naive-replay oracle
//! under randomized update sequences.

use lineagestore::{LineageStore, LineageStoreConfig};
use lpg::{
    Direction, Graph, Interval, NodeId, PropertyValue, RelId, StrId, TemporalGraph,
    TimestampedUpdate, Update,
};
use proptest::prelude::*;
use tempfile::tempdir;

fn open(threshold: Option<u32>) -> (tempfile::TempDir, LineageStore) {
    let dir = tempdir().unwrap();
    let s = LineageStore::open(
        dir.path().join("l.db"),
        LineageStoreConfig {
            cache_pages: 32,
            chain_threshold: threshold,
            ..Default::default()
        },
    )
    .unwrap();
    (dir, s)
}

fn add_node(i: u64) -> Update {
    Update::AddNode {
        id: NodeId::new(i),
        labels: vec![StrId::new(0)],
        props: vec![(StrId::new(0), PropertyValue::Int(0))],
    }
}

fn set_prop(i: u64, v: i64) -> Update {
    Update::SetNodeProp {
        id: NodeId::new(i),
        key: StrId::new(1),
        value: PropertyValue::Int(v),
    }
}

#[test]
fn node_history_versions_and_intervals() {
    let (_d, s) = open(Some(4));
    s.apply_update(1, &add_node(7)).unwrap();
    s.apply_update(5, &set_prop(7, 10)).unwrap();
    s.apply_update(9, &set_prop(7, 20)).unwrap();
    s.apply_update(12, &Update::DeleteNode { id: NodeId::new(7) })
        .unwrap();

    let hist = s.node_history(NodeId::new(7), 0, 20).unwrap();
    assert_eq!(hist.len(), 3);
    assert_eq!(hist[0].valid, Interval::new(1, 5));
    assert_eq!(hist[1].valid, Interval::new(5, 9));
    assert_eq!(hist[2].valid, Interval::new(9, 12));
    assert_eq!(hist[0].data.prop(StrId::new(1)), None);
    assert_eq!(
        hist[1].data.prop(StrId::new(1)),
        Some(&PropertyValue::Int(10))
    );
    assert_eq!(
        hist[2].data.prop(StrId::new(1)),
        Some(&PropertyValue::Int(20))
    );

    // Point query: a single clipped version.
    let point = s.node_history(NodeId::new(7), 6, 6).unwrap();
    assert_eq!(point.len(), 1);
    assert_eq!(
        point[0].data.prop(StrId::new(1)),
        Some(&PropertyValue::Int(10))
    );
    // After deletion: nothing.
    assert!(s.node_history(NodeId::new(7), 15, 20).unwrap().is_empty());
    assert!(s.node_at(NodeId::new(7), 12).unwrap().is_none());
    assert!(s.node_at(NodeId::new(7), 11).unwrap().is_some());
}

#[test]
fn chain_thresholds_do_not_change_answers() {
    let mut answers = Vec::new();
    for threshold in [Some(1), Some(2), Some(4), Some(16), None] {
        let (_d, s) = open(threshold);
        s.apply_update(1, &add_node(1)).unwrap();
        for i in 0..40u64 {
            s.apply_update(2 + i, &set_prop(1, i as i64 * 3)).unwrap();
        }
        let at_mid = s.node_at(NodeId::new(1), 21).unwrap().unwrap();
        let at_end = s.node_at(NodeId::new(1), 100).unwrap().unwrap();
        let hist_len = s.node_history(NodeId::new(1), 0, 100).unwrap().len();
        answers.push((
            at_mid.prop(StrId::new(1)).cloned(),
            at_end.prop(StrId::new(1)).cloned(),
            hist_len,
        ));
    }
    for pair in answers.windows(2) {
        assert_eq!(pair[0], pair[1], "threshold changed query results");
    }
}

#[test]
fn materialization_stats_reflect_threshold() {
    let (_d, dense) = open(Some(1));
    let (_d2, sparse) = open(None);
    for s in [&dense, &sparse] {
        s.apply_update(1, &add_node(1)).unwrap();
        for i in 0..20u64 {
            s.apply_update(2 + i, &set_prop(1, i as i64)).unwrap();
        }
    }
    assert_eq!(dense.stats().materializations, 20);
    assert_eq!(dense.stats().deltas, 0);
    assert_eq!(sparse.stats().materializations, 0);
    assert_eq!(sparse.stats().deltas, 20);
    // Denser materialization costs more bytes.
    assert!(dense.size_bytes() >= sparse.size_bytes());
}

#[test]
fn same_timestamp_updates_coalesce() {
    let (_d, s) = open(Some(4));
    // One transaction: create a node and immediately set properties.
    s.apply_commit(
        5,
        &[
            add_node(1),
            set_prop(1, 7),
            Update::AddLabel {
                id: NodeId::new(1),
                label: StrId::new(3),
            },
        ],
    )
    .unwrap();
    let n = s.node_at(NodeId::new(1), 5).unwrap().unwrap();
    assert_eq!(n.prop(StrId::new(1)), Some(&PropertyValue::Int(7)));
    assert!(n.has_label(StrId::new(3)));
    // Exactly one version exists.
    assert_eq!(s.node_history(NodeId::new(1), 0, 100).unwrap().len(), 1);
    assert_eq!(s.applied_ts(), 5);
}

#[test]
fn rel_history_and_endpoint_lookup() {
    let (_d, s) = open(Some(4));
    s.apply_update(1, &add_node(1)).unwrap();
    s.apply_update(2, &add_node(2)).unwrap();
    s.apply_update(
        3,
        &Update::AddRel {
            id: RelId::new(9),
            src: NodeId::new(1),
            tgt: NodeId::new(2),
            label: Some(StrId::new(5)),
            props: vec![],
        },
    )
    .unwrap();
    s.apply_update(
        6,
        &Update::SetRelProp {
            id: RelId::new(9),
            key: StrId::new(2),
            value: PropertyValue::Float(1.5),
        },
    )
    .unwrap();
    s.apply_update(8, &Update::DeleteRel { id: RelId::new(9) })
        .unwrap();
    let hist = s.rel_history(RelId::new(9), 0, 10).unwrap();
    assert_eq!(hist.len(), 2);
    assert_eq!(hist[0].valid, Interval::new(3, 6));
    assert_eq!(hist[1].valid, Interval::new(6, 8));
    assert_eq!(hist[1].data.src, NodeId::new(1));
    // rels_at respects the deletion.
    assert_eq!(
        s.rels_at(NodeId::new(1), Direction::Outgoing, 7)
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        s.rels_at(NodeId::new(1), Direction::Outgoing, 8)
            .unwrap()
            .len(),
        0
    );
    // rels_history groups by relationship.
    let per_rel = s
        .rels_history(NodeId::new(2), Direction::Incoming, 0, 10)
        .unwrap();
    assert_eq!(per_rel.len(), 1);
    assert_eq!(per_rel[0].len(), 2);
}

#[test]
fn multigraph_edges_between_same_pair() {
    let (_d, s) = open(Some(4));
    s.apply_update(1, &add_node(1)).unwrap();
    s.apply_update(2, &add_node(2)).unwrap();
    for rid in 0..3u64 {
        s.apply_update(
            3 + rid,
            &Update::AddRel {
                id: RelId::new(rid),
                src: NodeId::new(1),
                tgt: NodeId::new(2),
                label: None,
                props: vec![],
            },
        )
        .unwrap();
    }
    // All three parallel edges are retrievable — unlike Raphtory (Sec. 6.2).
    assert_eq!(
        s.rels_at(NodeId::new(1), Direction::Outgoing, 10)
            .unwrap()
            .len(),
        3
    );
    s.apply_update(10, &Update::DeleteRel { id: RelId::new(1) })
        .unwrap();
    assert_eq!(
        s.rels_at(NodeId::new(1), Direction::Outgoing, 10)
            .unwrap()
            .len(),
        2
    );
}

#[test]
fn watermark_survives_reopen() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("l.db");
    {
        let s = LineageStore::open(&path, LineageStoreConfig::default()).unwrap();
        s.apply_commit(42, &[add_node(1)]).unwrap();
        s.sync().unwrap();
    }
    let s = LineageStore::open(&path, LineageStoreConfig::default()).unwrap();
    assert_eq!(s.applied_ts(), 42);
    assert!(s.node_at(NodeId::new(1), 42).unwrap().is_some());
}

// ------------------------------------------------------------------ oracle

/// Random-but-valid update sequences over a small id space.
fn history_strategy() -> impl Strategy<Value = Vec<(u64, Update)>> {
    proptest::collection::vec((0u64..6, 0u64..6, 0u64..4, any::<i64>(), 0u8..6), 1..80).prop_map(
        |raw| {
            let mut live_nodes: Vec<u64> = Vec::new();
            let mut live_rels: Vec<(u64, u64, u64)> = Vec::new(); // (rid, src, tgt)
            let mut next_rel = 0u64;
            let mut out = Vec::new();
            let mut ts = 0u64;
            for (a, b, key, val, kind) in raw {
                ts += 1;
                let op = match kind {
                    0 => {
                        if live_nodes.contains(&a) {
                            continue;
                        }
                        live_nodes.push(a);
                        add_node(a)
                    }
                    1 => {
                        if !live_nodes.contains(&a) || !live_nodes.contains(&b) {
                            continue;
                        }
                        let rid = next_rel;
                        next_rel += 1;
                        live_rels.push((rid, a, b));
                        Update::AddRel {
                            id: RelId::new(rid),
                            src: NodeId::new(a),
                            tgt: NodeId::new(b),
                            label: None,
                            props: vec![],
                        }
                    }
                    2 => {
                        if live_rels.is_empty() {
                            continue;
                        }
                        let (rid, _, _) = live_rels.remove((a as usize) % live_rels.len());
                        Update::DeleteRel {
                            id: RelId::new(rid),
                        }
                    }
                    3 => {
                        if !live_nodes.contains(&a) {
                            continue;
                        }
                        Update::SetNodeProp {
                            id: NodeId::new(a),
                            key: StrId::new(key as u32),
                            value: PropertyValue::Int(val),
                        }
                    }
                    4 => {
                        if live_rels.is_empty() {
                            continue;
                        }
                        let (rid, _, _) = live_rels[(a as usize) % live_rels.len()];
                        Update::SetRelProp {
                            id: RelId::new(rid),
                            key: StrId::new(key as u32),
                            value: PropertyValue::Int(val),
                        }
                    }
                    _ => {
                        // Delete a node only when it has no live rels.
                        if !live_nodes.contains(&a)
                            || live_rels.iter().any(|(_, s, t)| *s == a || *t == a)
                        {
                            continue;
                        }
                        live_nodes.retain(|n| *n != a);
                        Update::DeleteNode { id: NodeId::new(a) }
                    }
                };
                out.push((ts, op));
            }
            out
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lineage_matches_naive_replay(
        ops in history_strategy(),
        threshold in prop_oneof![Just(Some(1u32)), Just(Some(3u32)), Just(None)],
    ) {
        let (_d, s) = open(threshold);
        for (ts, op) in &ops {
            s.apply_update(*ts, op).unwrap();
        }
        let max_ts = ops.last().map(|(t, _)| *t).unwrap_or(0) + 2;
        // Oracle: temporal graph by naive replay.
        let updates: Vec<TimestampedUpdate> = ops
            .iter()
            .map(|(t, o)| TimestampedUpdate::new(*t, o.clone()))
            .collect();
        let oracle = TemporalGraph::build(&Graph::new(), Interval::new(0, max_ts), &updates);

        // Full snapshots agree at several probes.
        for probe in [1, max_ts / 2, max_ts - 1] {
            let got = s.snapshot_at(probe).unwrap();
            let want = oracle.graph_at(probe);
            prop_assert!(got.same_as(&want), "snapshot mismatch at ts {}", probe);
        }

        // Node histories agree (modulo window clipping which both apply).
        for id in 0u64..6 {
            let got = s.node_history(NodeId::new(id), 0, max_ts).unwrap();
            let want = oracle.nodes.get(&NodeId::new(id)).cloned().unwrap_or_default();
            prop_assert_eq!(got.len(), want.len(), "node {} version count", id);
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert_eq!(g.valid, w.valid);
                prop_assert_eq!(&g.data, &w.data);
            }
        }
    }
}
