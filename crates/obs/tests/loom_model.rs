//! Model tests for the lock-free metrics primitives.
//!
//! Written against the loom API; the vendored shim (shims/loom) runs
//! each model as a bounded seeded stress loop over real threads, and
//! the tests get exhaustive interleaving coverage unchanged the day the
//! real crate replaces the shim. `LOOM_MAX_ITER` bounds iterations.

use loom::sync::Arc;
use loom::thread;

#[test]
fn counter_increments_are_never_lost() {
    loom::model(|| {
        let c = Arc::new(obs::Counter::default());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..4 {
                    c.inc();
                    thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().expect("counter thread");
        }
        assert_eq!(c.get(), 12);
    });
}

#[test]
fn gauge_add_is_atomic_under_contention() {
    loom::model(|| {
        let g = Arc::new(obs::Gauge::default());
        let up = {
            let g = g.clone();
            thread::spawn(move || {
                for _ in 0..8 {
                    g.add(3);
                    thread::yield_now();
                }
            })
        };
        let down = {
            let g = g.clone();
            thread::spawn(move || {
                for _ in 0..8 {
                    g.add(-3);
                    thread::yield_now();
                }
            })
        };
        up.join().expect("up");
        down.join().expect("down");
        assert_eq!(g.get(), 0);
    });
}

#[test]
fn histogram_count_and_sum_stay_consistent() {
    loom::model(|| {
        let h = Arc::new(obs::Histogram::default());
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let h = h.clone();
            handles.push(thread::spawn(move || {
                for i in 0..5u64 {
                    h.record(t * 100 + i);
                    thread::yield_now();
                }
            }));
        }
        for hdl in handles {
            hdl.join().expect("recorder");
        }
        assert_eq!(h.count(), 10);
        // Sum of both arithmetic series: 0..5 and 100..105.
        assert_eq!(h.sum(), (1 + 2 + 3 + 4) + (100 + 101 + 102 + 103 + 104));
    });
}

#[test]
fn registry_returns_one_instance_per_name_under_races() {
    loom::model(|| {
        let reg = Arc::new(obs::Registry::new());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                let c = reg.counter("race.metric");
                c.inc();
                thread::yield_now();
                reg.counter("race.metric").inc();
            }));
        }
        for h in handles {
            h.join().expect("registrar");
        }
        // All six increments landed on the same counter: racing
        // registrations must not mint distinct instances.
        assert_eq!(reg.snapshot().counter("race.metric"), Some(6));
    });
}
