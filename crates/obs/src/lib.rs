//! # aion-obs — runtime observability for the Aion reproduction
//!
//! A dependency-light metrics layer: every subsystem registers named
//! counters, gauges, and fixed-bucket latency histograms against one
//! process-wide registry, and anything (the server's `Request::Metrics`,
//! `Aion::metrics()`, the bench harness sidecars, `aion-fsck gen
//! --metrics`) can snapshot it.
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths are lock-free.** A handle (`Arc<Counter>` etc.) is
//!    fetched once at subsystem construction; recording is a relaxed
//!    atomic op. The registry mutex is only taken at registration and
//!    snapshot time.
//! 2. **No dependencies.** `std` only — usable from every crate in the
//!    workspace without widening the build graph.
//! 3. **No panics.** The registry is subject to the same panic-freedom
//!    lint gate as the storage crates.
//!
//! Histograms use fixed exponential buckets (doubling from 256 ns to
//! ~17 s) which is plenty of resolution for p50/p95/p99 over I/O and
//! query latencies; values are raw `u64`s so the same type also records
//! non-temporal distributions (e.g. `expand` fan-out).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Default, Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Default, Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` covers values `≤ 256 << i`
/// (nanoseconds for timers); the last bucket is the overflow catch-all.
pub const BUCKETS: usize = 27;

/// Upper bound of bucket `i` (inclusive); the final bucket is unbounded.
fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        256u64 << i
    }
}

fn bucket_index(value: u64) -> usize {
    let mut i = 0;
    while i + 1 < BUCKETS && value > bucket_bound(i) {
        i += 1;
    }
    i
}

/// A fixed-bucket distribution with lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the `q`-th observation, 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Starts a scope timer that records elapsed nanoseconds on drop.
    pub fn start_timer(self: &Arc<Self>) -> TimerGuard {
        TimerGuard {
            hist: self.clone(),
            start: Instant::now(),
        }
    }
}

/// Records elapsed wall-clock nanoseconds into its histogram on drop.
pub struct TimerGuard {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(nanos);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

/// A named-metric registry. Most callers want the process-wide one via
/// the free functions [`counter`], [`gauge`], [`histogram`], and
/// [`snapshot`].
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

fn find_or_insert<T: Default>(list: &mut Vec<(String, Arc<T>)>, name: &str) -> Arc<T> {
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return v.clone();
    }
    let v = Arc::new(T::default());
    list.push((name.to_string(), v.clone()));
    v
}

impl Registry {
    /// An empty registry (tests; production code uses the global one).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // A poisoned metrics mutex must never take the database down;
        // the counters it guards are advisory.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        find_or_insert(&mut self.lock().counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        find_or_insert(&mut self.lock().gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        find_or_insert(&mut self.lock().histograms, name)
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, i64)> = inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.clone(),
                count: h.count(),
                sum: h.sum(),
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
            })
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide counter named `name`.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// The process-wide gauge named `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// The process-wide histogram named `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Snapshots the process-wide registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// One histogram, summarized.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HistogramSnapshot {
    /// Registered name (dotted scopes, e.g. `query.exec.latency`).
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observed values (nanoseconds for timers).
    pub sum: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// A point-in-time copy of a registry, sorted by metric name.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram summary named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Prometheus-style text exposition. Dotted metric names become
    /// underscore-separated with an `aion_` prefix; histograms expose
    /// `_count`, `_sum`, and quantile-labelled summary samples.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            out.push_str(&format!(
                "# TYPE {n} summary\n\
                 {n}{{quantile=\"0.5\"}} {}\n\
                 {n}{{quantile=\"0.95\"}} {}\n\
                 {n}{{quantile=\"0.99\"}} {}\n\
                 {n}_sum {}\n\
                 {n}_count {}\n",
                h.p50, h.p95, h.p99, h.sum, h.count
            ));
        }
        out
    }

    /// JSON exposition (hand-rolled; names are dotted as registered).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_json_map(&mut out, self.counters.iter().map(|(n, v)| (n, *v as i64)));
        out.push_str("},\n  \"gauges\": {");
        push_json_map(&mut out, self.gauges.iter().map(|(n, v)| (n, *v)));
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_string(&h.name),
                h.count,
                h.sum,
                h.p50,
                h.p95,
                h.p99
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_json_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, i64)>) {
    let mut any = false;
    for (i, (n, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {v}", json_string(n)));
        any = true;
    }
    if any {
        out.push_str("\n  ");
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sanitizes a dotted metric name into a Prometheus identifier.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("aion_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let r = Registry::new();
        r.counter("a.hits").inc();
        r.counter("a.hits").add(2);
        r.gauge("a.depth").set(-4);
        let s = r.snapshot();
        assert_eq!(s.counter("a.hits"), Some(3));
        assert_eq!(s.gauge("a.depth"), Some(-4));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for _ in 0..90 {
            h.record(1_000); // ≤ 1024 bucket
        }
        for _ in 0..10 {
            h.record(1_000_000); // ≤ bucket bound 1_048_576
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 1_000 + 10 * 1_000_000);
        assert_eq!(h.quantile(0.5), 1024);
        assert!(h.quantile(0.99) >= 1_000_000);
        // Empty histogram quantiles are 0.
        assert_eq!(r.histogram("other").quantile(0.5), 0);
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("t");
        {
            let _g = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() > 0);
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_cover_u64() {
        let mut prev = 0;
        for i in 0..BUCKETS {
            assert!(bucket_bound(i) > prev || bucket_bound(i) == u64::MAX);
            prev = bucket_bound(i);
        }
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_sorted_and_expositions_well_formed() {
        let r = Registry::new();
        r.counter("z.last").inc();
        r.counter("a.first").inc();
        r.histogram("mid.lat").record(5);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "a.first");
        assert_eq!(s.counters[1].0, "z.last");
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE aion_a_first counter"));
        assert!(prom.contains("aion_mid_lat_count 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
            assert!(parts.next().is_some());
        }
        let json = s.to_json();
        assert!(json.contains("\"a.first\": 1"));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn global_registry_is_shared() {
        counter("obs.test.global").add(5);
        assert!(snapshot().counter("obs.test.global").unwrap_or(0) >= 5);
    }
}
