//! The store-selection heuristic (Sec. 5.1): "Based on the cardinality
//! estimation of this generated plan, Aion adopts a simple heuristic to
//! select between the two temporal stores: (i) if less than 30% of the
//! graph is accessed, Aion uses the LineageStore; (ii) otherwise, it
//! constructs a full graph snapshot with the TimeStore." The threshold
//! itself comes from the crossover measured in Fig. 8 (Sec. 6.3).

use crate::stats::Statistics;

/// Which temporal store should serve a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreChoice {
    /// Fine-grained, entity-indexed store (point / small-subgraph access).
    Lineage,
    /// Snapshot + log store (global access).
    Time,
}

/// Access shape of a temporal query, as seen by the planner.
#[derive(Clone, Copy, Debug)]
pub enum AccessPattern {
    /// Single node/relationship lookup.
    Point,
    /// n-hop expansion from `seeds` start nodes.
    Expand {
        /// Start-node count.
        seeds: u64,
        /// Hop budget.
        hops: u32,
    },
    /// Whole-graph access (snapshots, windows, temporal graphs).
    Global,
    /// A label/type-constrained pattern scan with a known estimate.
    Cardinality(u64),
}

/// Cardinality-driven planner.
pub struct Planner {
    threshold: f64,
}

impl Planner {
    /// A planner with the paper's 30 % threshold.
    pub fn new() -> Self {
        Planner { threshold: 0.3 }
    }

    /// A planner with a custom threshold (ablation experiments).
    pub fn with_threshold(threshold: f64) -> Self {
        Planner { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Estimates the accessed fraction of the graph for `pattern`.
    pub fn estimate_fraction(&self, stats: &Statistics, pattern: AccessPattern) -> f64 {
        match pattern {
            AccessPattern::Point => {
                let total = (stats.node_count() + stats.rel_count()).max(1);
                1.0 / total as f64
            }
            AccessPattern::Expand { seeds, hops } => stats.estimate_expand_fraction(seeds, hops),
            AccessPattern::Global => 1.0,
            AccessPattern::Cardinality(rows) => {
                let total = (stats.node_count() + stats.rel_count()).max(1);
                (rows as f64 / total as f64).min(1.0)
            }
        }
    }

    /// Picks the store for `pattern`.
    pub fn choose(&self, stats: &Statistics, pattern: AccessPattern) -> StoreChoice {
        if self.estimate_fraction(stats, pattern) < self.threshold {
            StoreChoice::Lineage
        } else {
            StoreChoice::Time
        }
    }
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{NodeId, RelId, Update};

    fn stats_with(nodes: u64, rels: u64) -> Statistics {
        let s = Statistics::new();
        let mut batch = Vec::new();
        for i in 0..nodes {
            batch.push(Update::AddNode {
                id: NodeId::new(i),
                labels: vec![],
                props: vec![],
            });
        }
        for i in 0..rels {
            batch.push(Update::AddRel {
                id: RelId::new(i),
                src: NodeId::new(i % nodes),
                tgt: NodeId::new((i + 1) % nodes),
                label: None,
                props: vec![],
            });
        }
        s.record_commit(&batch, |_| &[]);
        s
    }

    #[test]
    fn point_queries_use_lineage() {
        let s = stats_with(1_000, 5_000);
        let p = Planner::new();
        assert_eq!(p.choose(&s, AccessPattern::Point), StoreChoice::Lineage);
    }

    #[test]
    fn global_queries_use_timestore() {
        let s = stats_with(1_000, 5_000);
        let p = Planner::new();
        assert_eq!(p.choose(&s, AccessPattern::Global), StoreChoice::Time);
    }

    #[test]
    fn expand_crosses_threshold_with_hops() {
        // Average degree 5: 1 hop touches a sliver, 8 hops everything.
        let s = stats_with(10_000, 50_000);
        let p = Planner::new();
        assert_eq!(
            p.choose(&s, AccessPattern::Expand { seeds: 1, hops: 1 }),
            StoreChoice::Lineage
        );
        assert_eq!(
            p.choose(&s, AccessPattern::Expand { seeds: 1, hops: 8 }),
            StoreChoice::Time
        );
        // The flip happens at some hop count in between.
        let mut flipped = None;
        for hops in 1..=8 {
            if p.choose(&s, AccessPattern::Expand { seeds: 1, hops }) == StoreChoice::Time {
                flipped = Some(hops);
                break;
            }
        }
        assert!(flipped.is_some());
    }

    #[test]
    fn cardinality_pattern_scales() {
        let s = stats_with(1_000, 1_000);
        let p = Planner::new();
        assert_eq!(
            p.choose(&s, AccessPattern::Cardinality(10)),
            StoreChoice::Lineage
        );
        assert_eq!(
            p.choose(&s, AccessPattern::Cardinality(1_500)),
            StoreChoice::Time
        );
    }

    #[test]
    fn custom_threshold() {
        let s = stats_with(100, 100);
        let p = Planner::with_threshold(0.0);
        // Everything at or above 0 goes to TimeStore.
        assert_eq!(p.choose(&s, AccessPattern::Point), StoreChoice::Time);
        assert_eq!(p.threshold(), 0.0);
    }
}
