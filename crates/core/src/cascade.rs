//! The background cascade (Fig. 4, stage 2): "only the TimeStore is
//! updated synchronously; then, background workers asynchronously apply
//! outstanding updates to the LineageStore".
//!
//! The cascade owns a worker thread fed by an unbounded channel of commit
//! events. [`Cascade::barrier`] lets tests and recovery wait until the
//! LineageStore has caught up with a given timestamp.

use crate::txn::CommitEvent;
use crossbeam_channel::{unbounded, Sender};
use lineagestore::LineageStore;
use lpg::{GraphError, Result, Timestamp};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Job {
    Apply(CommitEvent),
    Stop,
}

/// Handle to the background LineageStore applier.
pub struct Cascade {
    tx: Sender<Job>,
    applied: Arc<AtomicU64>,
    wedged: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl Cascade {
    /// Spawns the worker over a shared LineageStore. Fails only if the OS
    /// refuses the thread.
    pub fn spawn(lineage: Arc<LineageStore>) -> Result<Cascade> {
        let (tx, rx) = unbounded::<Job>();
        let applied = Arc::new(AtomicU64::new(lineage.applied_ts()));
        let applied2 = applied.clone();
        let wedged = Arc::new(AtomicBool::new(false));
        let wedged2 = wedged.clone();
        let worker = std::thread::Builder::new()
            .name("aion-cascade".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Apply(event) => {
                            // An application failure means the LineageStore
                            // cannot represent this commit (I/O error, torn
                            // state). Advancing the watermark past it would
                            // let queries read a silently incomplete store,
                            // so wedge instead: stop applying, keep the
                            // watermark where it is, and let the TimeStore
                            // fallback serve queries until the next reopen
                            // rebuilds the LineageStore from the log.
                            if wedged2.load(Ordering::Acquire) {
                                continue;
                            }
                            if lineage.apply_commit(event.ts, &event.updates).is_err() {
                                wedged2.store(true, Ordering::Release);
                                continue;
                            }
                            applied2.store(event.ts, Ordering::Release);
                        }
                        Job::Stop => break,
                    }
                }
            })
            .map_err(|e| GraphError::Storage(format!("spawn cascade worker: {e}")))?;
        Ok(Cascade {
            tx,
            applied,
            wedged,
            worker: Some(worker),
        })
    }

    /// Enqueues a committed transaction.
    pub fn submit(&self, event: CommitEvent) {
        let _ = self.tx.send(Job::Apply(event));
    }

    /// Highest timestamp the LineageStore has fully applied.
    pub fn applied_ts(&self) -> Timestamp {
        self.applied.load(Ordering::Acquire)
    }

    /// Whether the worker hit an apply error and stopped advancing.
    pub fn is_wedged(&self) -> bool {
        self.wedged.load(Ordering::Acquire)
    }

    /// Blocks until everything at or below `ts` has been applied, or the
    /// cascade wedges (in which case the watermark will never reach `ts`).
    pub fn barrier(&self, ts: Timestamp) {
        while self.applied_ts() < ts && !self.is_wedged() {
            std::thread::yield_now();
        }
    }
}

impl Drop for Cascade {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Stop);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagestore::LineageStoreConfig;
    use lpg::{NodeId, Update};
    use tempfile::tempdir;

    #[test]
    fn cascade_applies_in_background() {
        let dir = tempdir().unwrap();
        let lineage = Arc::new(
            LineageStore::open(dir.path().join("l.db"), LineageStoreConfig::default()).unwrap(),
        );
        let cascade = Cascade::spawn(lineage.clone()).unwrap();
        for ts in 1..=50u64 {
            cascade.submit(CommitEvent {
                ts,
                updates: Arc::new(vec![Update::AddNode {
                    id: NodeId::new(ts),
                    labels: vec![],
                    props: vec![],
                }]),
            });
        }
        cascade.barrier(50);
        assert_eq!(lineage.applied_ts(), 50);
        assert!(lineage.node_at(NodeId::new(25), 30).unwrap().is_some());
    }

    #[test]
    fn drop_stops_worker_cleanly() {
        let dir = tempdir().unwrap();
        let lineage = Arc::new(
            LineageStore::open(dir.path().join("l.db"), LineageStoreConfig::default()).unwrap(),
        );
        let cascade = Cascade::spawn(lineage.clone()).unwrap();
        cascade.submit(CommitEvent {
            ts: 1,
            updates: Arc::new(vec![Update::AddNode {
                id: NodeId::new(1),
                labels: vec![],
                props: vec![],
            }]),
        });
        cascade.barrier(1);
        drop(cascade);
        assert_eq!(lineage.applied_ts(), 1);
    }
}
