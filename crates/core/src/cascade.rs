//! The background cascade (Fig. 4, stage 2): "only the TimeStore is
//! updated synchronously; then, background workers asynchronously apply
//! outstanding updates to the LineageStore".
//!
//! The cascade owns a worker thread fed by an unbounded channel of commit
//! events. [`Cascade::barrier`] lets tests and recovery wait until the
//! LineageStore has caught up with a given timestamp.

use crate::txn::CommitEvent;
use crossbeam_channel::{unbounded, Sender};
use lineagestore::LineageStore;
use lpg::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Job {
    Apply(CommitEvent),
    Stop,
}

/// Handle to the background LineageStore applier.
pub struct Cascade {
    tx: Sender<Job>,
    applied: Arc<AtomicU64>,
    worker: Option<JoinHandle<()>>,
}

impl Cascade {
    /// Spawns the worker over a shared LineageStore.
    pub fn spawn(lineage: Arc<LineageStore>) -> Cascade {
        let (tx, rx) = unbounded::<Job>();
        let applied = Arc::new(AtomicU64::new(lineage.applied_ts()));
        let applied2 = applied.clone();
        let worker = std::thread::Builder::new()
            .name("aion-cascade".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Apply(event) => {
                            // An application failure here means the stores
                            // diverged — surface loudly in debug, skip in
                            // release (the TimeStore remains authoritative
                            // and recovery re-syncs).
                            if let Err(e) = lineage.apply_commit(event.ts, &event.updates) {
                                debug_assert!(false, "cascade apply failed: {e}");
                            }
                            applied2.store(event.ts, Ordering::Release);
                        }
                        Job::Stop => break,
                    }
                }
            })
            .expect("spawn cascade worker");
        Cascade {
            tx,
            applied,
            worker: Some(worker),
        }
    }

    /// Enqueues a committed transaction.
    pub fn submit(&self, event: CommitEvent) {
        let _ = self.tx.send(Job::Apply(event));
    }

    /// Highest timestamp the LineageStore has fully applied.
    pub fn applied_ts(&self) -> Timestamp {
        self.applied.load(Ordering::Acquire)
    }

    /// Blocks until everything at or below `ts` has been applied.
    pub fn barrier(&self, ts: Timestamp) {
        while self.applied_ts() < ts {
            std::thread::yield_now();
        }
    }
}

impl Drop for Cascade {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Stop);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagestore::LineageStoreConfig;
    use lpg::{NodeId, Update};
    use tempfile::tempdir;

    #[test]
    fn cascade_applies_in_background() {
        let dir = tempdir().unwrap();
        let lineage = Arc::new(
            LineageStore::open(dir.path().join("l.db"), LineageStoreConfig::default()).unwrap(),
        );
        let cascade = Cascade::spawn(lineage.clone());
        for ts in 1..=50u64 {
            cascade.submit(CommitEvent {
                ts,
                updates: Arc::new(vec![Update::AddNode {
                    id: NodeId::new(ts),
                    labels: vec![],
                    props: vec![],
                }]),
            });
        }
        cascade.barrier(50);
        assert_eq!(lineage.applied_ts(), 50);
        assert!(lineage.node_at(NodeId::new(25), 30).unwrap().is_some());
    }

    #[test]
    fn drop_stops_worker_cleanly() {
        let dir = tempdir().unwrap();
        let lineage = Arc::new(
            LineageStore::open(dir.path().join("l.db"), LineageStoreConfig::default()).unwrap(),
        );
        let cascade = Cascade::spawn(lineage.clone());
        cascade.submit(CommitEvent {
            ts: 1,
            updates: Arc::new(vec![Update::AddNode {
                id: NodeId::new(1),
                labels: vec![],
                props: vec![],
            }]),
        });
        cascade.barrier(1);
        drop(cascade);
        assert_eq!(lineage.applied_ts(), 1);
    }
}
