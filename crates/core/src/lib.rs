//! # aion-core — the transactional temporal graph DBMS (Sec. 5)
//!
//! This crate assembles the substrates into the system of Fig. 4:
//!
//! ```text
//!   write txn ──commit──▶ event listener (stage 1)
//!        │                      │
//!        ▼                      ▼
//!   latest graph        TimeStore (synchronous, stage 2)
//!                               │ background cascade
//!                               ▼
//!                 LineageStore + GraphStore (asynchronous)
//!
//!   temporal query (stage 3) ──▶ planner ──▶ LineageStore | TimeStore
//! ```
//!
//! * [`txn`] — write transactions with full LPG constraint validation and
//!   monotonically increasing commit timestamps; the after-commit event
//!   listener contract mirrors Neo4j's (`TransactionEventListener`).
//! * [`cascade`] — the background workers that apply committed updates to
//!   the LineageStore off the critical path; the LineageStore "lags behind
//!   the TimeStore, and in the rare case that it cannot serve a temporal
//!   query, the TimeStore is used instead" (Sec. 5.1).
//! * `group_commit` — the dedicated log-writer thread that coalesces
//!   concurrent commits into one TimeStore append run and one shared
//!   durability fsync (bounded by `AionConfig::commit_latency_budget`).
//! * [`stats`] — histogram base statistics (nodes, relationships, labels,
//!   types, patterns) and derived cardinality estimates.
//! * [`planner`] — the heuristic store selector: "if less than 30% of the
//!   graph is accessed, Aion uses the LineageStore; otherwise, it
//!   constructs a full graph snapshot with the TimeStore".
//! * [`db`] — [`Aion`] itself, exposing the Table 1 temporal graph API.
//! * [`bitemporal`] — application-time handling (Sec. 4.5): application
//!   start/end stored as ordinary properties, filtered after system-time
//!   retrieval, with fallback to system time when unset.
//! * [`procedures`] — the temporal procedures layer (Sec. 5.1): graph
//!   projections plus incremental AVG / BFS / PageRank over snapshot
//!   series (Sec. 6.6), with results cached for reuse.

pub mod bitemporal;
pub mod cascade;
pub mod db;
mod group_commit;
pub mod planner;
pub mod procedures;
pub mod stats;
pub mod stream;
pub mod txn;

pub use check::{CheckLevel, ConsistencyReport};
pub use db::{Aion, AionConfig, StoreChoice};
pub use planner::Planner;
pub use stats::Statistics;
pub use stream::NodeStream;
pub use txn::{CommitEvent, WriteTxn};
