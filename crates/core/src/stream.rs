//! Snapshot-pinned node streams for the lazy query executor.
//!
//! A [`NodeStream`] yields the nodes alive at one pinned timestamp in
//! strictly ascending id order, one node at a time, without ever holding
//! the full result set. Both backing stores produce the *same* sequence,
//! so a pagination cursor anchored on "last node id emitted" resumes
//! identically regardless of which store serves the next page:
//!
//! - **Lineage source** — a key-only walk of the `(nodeId, ts)` B+Tree
//!   index ([`lineagestore::NodeIdScan`]) resolving each candidate with
//!   `node_at(id, ts)`. Touches O(entries before the cut-off) index
//!   entries, which is what makes pushed-down `LIMIT` cheap.
//! - **Snapshot source** — a pinned `Arc<Graph>` from the TimeStore used
//!   while the lineage applier lags or is wedged; ids are sorted once and
//!   stepped lazily. Holding the `Arc` pins the snapshot for the stream's
//!   lifetime, never the rows.
//!
//! Every live stream is visible in the `core.stream.open` gauge; `Drop`
//! decrements it, so tests can assert aborted requests release their
//! pinned snapshots.

use lineagestore::{LineageStore, NodeIdScan};
use lpg::{Graph, Node, NodeId, Result, Timestamp};
use std::sync::Arc;

enum Source {
    Lineage {
        ids: NodeIdScan,
        store: Arc<LineageStore>,
    },
    Snapshot {
        graph: Arc<Graph>,
        ids: Vec<NodeId>,
        idx: usize,
    },
}

/// Ascending-id stream of nodes alive at a pinned timestamp.
pub struct NodeStream {
    source: Source,
    ts: Timestamp,
    open: Arc<obs::Gauge>,
}

impl NodeStream {
    pub(crate) fn lineage(
        store: Arc<LineageStore>,
        ts: Timestamp,
        after: Option<NodeId>,
    ) -> Result<NodeStream> {
        let ids = store.stream_node_ids_from(after)?;
        Ok(NodeStream::register(Source::Lineage { ids, store }, ts))
    }

    pub(crate) fn snapshot(graph: Arc<Graph>, ts: Timestamp, after: Option<NodeId>) -> NodeStream {
        let mut ids: Vec<NodeId> = graph.nodes().map(|n| n.id).collect();
        ids.sort_unstable();
        let idx = match after {
            Some(a) => ids.partition_point(|id| *id <= a),
            None => 0,
        };
        NodeStream::register(Source::Snapshot { graph, ids, idx }, ts)
    }

    fn register(source: Source, ts: Timestamp) -> NodeStream {
        let open = obs::gauge("core.stream.open");
        open.add(1);
        NodeStream { source, ts, open }
    }

    /// The timestamp this stream is pinned to.
    pub fn snapshot_ts(&self) -> Timestamp {
        self.ts
    }

    /// The next node alive at the pinned timestamp, in ascending id order.
    pub fn next_node(&mut self) -> Result<Option<Node>> {
        match &mut self.source {
            Source::Lineage { ids, store } => {
                for id in ids.by_ref() {
                    // Ids cover every node that ever existed; only those
                    // alive at the pinned ts are part of the snapshot.
                    if let Some(n) = store.node_at(id?, self.ts)? {
                        return Ok(Some(n));
                    }
                }
                Ok(None)
            }
            Source::Snapshot { graph, ids, idx } => {
                let Some(id) = ids.get(*idx) else {
                    return Ok(None);
                };
                *idx += 1;
                match graph.node(*id) {
                    Some(n) => Ok(Some(n.clone())),
                    None => Err(lpg::GraphError::CorruptRecord(format!(
                        "snapshot lost node {id} mid-stream"
                    ))),
                }
            }
        }
    }
}

impl Drop for NodeStream {
    fn drop(&mut self) {
        self.open.add(-1);
    }
}
