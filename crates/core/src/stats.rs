//! Base statistics and cardinality estimation (Sec. 5.1).
//!
//! "Aion uses histograms to track base statistics, including the number
//! of: (i) nodes and relationships; (ii) nodes with a specific label;
//! (iii) relationships with a specific type; (iv) relationships with a
//! predefined pattern (e.g. (:Label)-[:Type]->()). Using these base
//! statistics, it can derive the cardinality of more complex patterns …
//! and estimate the percentage of the graph history accessed."

use lpg::{StrId, Update};
use parking_lot::RwLock;
use std::collections::HashMap;

#[derive(Default)]
struct Inner {
    nodes: u64,
    rels: u64,
    label_counts: HashMap<StrId, u64>,
    type_counts: HashMap<StrId, u64>,
    /// (src label, rel type) → count, the `(:A)-[:R]->()` pattern histogram.
    out_pattern: HashMap<(StrId, StrId), u64>,
    /// (rel type, tgt label) → count, the `()-[:R]->(:B)` pattern histogram.
    in_pattern: HashMap<(StrId, StrId), u64>,
    /// Total updates ever ingested (graph history size).
    updates: u64,
}

/// Concurrent statistics collector, updated on every commit.
#[derive(Default)]
pub struct Statistics {
    inner: RwLock<Inner>,
}

impl Statistics {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one committed update batch into the histograms. `node_labels`
    /// resolves a node's labels at commit time (for pattern counts); it
    /// returns a borrowed slice so the hot ingest path never clones a
    /// label vector per relationship.
    pub fn record_commit<'g>(
        &self,
        updates: &[Update],
        node_labels: impl Fn(lpg::NodeId) -> &'g [StrId],
    ) {
        let mut g = self.inner.write();
        for u in updates {
            g.updates += 1;
            match u {
                Update::AddNode { labels, .. } => {
                    g.nodes += 1;
                    for l in labels {
                        *g.label_counts.entry(*l).or_insert(0) += 1;
                    }
                }
                Update::DeleteNode { .. } => g.nodes = g.nodes.saturating_sub(1),
                Update::AddRel {
                    src, tgt, label, ..
                } => {
                    g.rels += 1;
                    if let Some(t) = label {
                        *g.type_counts.entry(*t).or_insert(0) += 1;
                        for l in node_labels(*src) {
                            *g.out_pattern.entry((*l, *t)).or_insert(0) += 1;
                        }
                        for l in node_labels(*tgt) {
                            *g.in_pattern.entry((*t, *l)).or_insert(0) += 1;
                        }
                    }
                }
                Update::DeleteRel { .. } => g.rels = g.rels.saturating_sub(1),
                Update::AddLabel { label, .. } => {
                    *g.label_counts.entry(*label).or_insert(0) += 1;
                }
                Update::RemoveLabel { label, .. } => {
                    if let Some(c) = g.label_counts.get_mut(label) {
                        *c = c.saturating_sub(1);
                    }
                }
                _ => {}
            }
        }
    }

    /// Live node count.
    pub fn node_count(&self) -> u64 {
        self.inner.read().nodes
    }

    /// Live relationship count.
    pub fn rel_count(&self) -> u64 {
        self.inner.read().rels
    }

    /// Total graph history size `|U|`.
    pub fn update_count(&self) -> u64 {
        self.inner.read().updates
    }

    /// Nodes carrying `label`.
    pub fn label_count(&self, label: StrId) -> u64 {
        self.inner
            .read()
            .label_counts
            .get(&label)
            .copied()
            .unwrap_or(0)
    }

    /// Relationships of `rel_type`.
    pub fn type_count(&self, rel_type: StrId) -> u64 {
        self.inner
            .read()
            .type_counts
            .get(&rel_type)
            .copied()
            .unwrap_or(0)
    }

    /// Estimated cardinality of `(:A)-[:R]->(:B)` using the paper's rule:
    /// `min(#((:A)-[:R]->()), #(()-[:R]->(:B)))`. `None` on either side
    /// means an unconstrained endpoint.
    pub fn pattern_count(
        &self,
        src_label: Option<StrId>,
        rel_type: StrId,
        tgt_label: Option<StrId>,
    ) -> u64 {
        let g = self.inner.read();
        let total = g.type_counts.get(&rel_type).copied().unwrap_or(0);
        let left = match src_label {
            Some(a) => g.out_pattern.get(&(a, rel_type)).copied().unwrap_or(0),
            None => total,
        };
        let right = match tgt_label {
            Some(b) => g.in_pattern.get(&(rel_type, b)).copied().unwrap_or(0),
            None => total,
        };
        left.min(right)
    }

    /// Average degree (|E| / |V|, 0 when empty).
    pub fn avg_degree(&self) -> f64 {
        let g = self.inner.read();
        if g.nodes == 0 {
            0.0
        } else {
            g.rels as f64 / g.nodes as f64
        }
    }

    /// Estimated fraction of the graph touched by an `hops`-hop expansion
    /// from `seeds` start nodes, assuming average branching. This powers the
    /// 30 % planner heuristic.
    pub fn estimate_expand_fraction(&self, seeds: u64, hops: u32) -> f64 {
        let g = self.inner.read();
        if g.nodes == 0 {
            return 0.0;
        }
        let entities = (g.nodes + g.rels) as f64;
        let d = g.rels as f64 / g.nodes as f64;
        // Reached nodes ≈ seeds · (1 + d + d² + … + d^hops), capped.
        let mut reached = seeds as f64;
        let mut frontier = seeds as f64;
        for _ in 0..hops {
            frontier *= d.max(0.0);
            reached += frontier;
            if reached >= entities {
                return 1.0;
            }
        }
        // Each reached node also touches ~d relationships.
        ((reached * (1.0 + d)) / entities).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{NodeId, RelId};

    fn sid(i: u32) -> StrId {
        StrId::new(i)
    }

    fn no_labels(_: lpg::NodeId) -> &'static [StrId] {
        &[]
    }

    #[test]
    fn counts_follow_commits() {
        let s = Statistics::new();
        let l1 = [sid(1)];
        let l2 = [sid(1), sid(2)];
        s.record_commit(
            &[
                Update::AddNode {
                    id: NodeId::new(1),
                    labels: vec![sid(1)],
                    props: vec![],
                },
                Update::AddNode {
                    id: NodeId::new(2),
                    labels: vec![sid(1), sid(2)],
                    props: vec![],
                },
                Update::AddRel {
                    id: RelId::new(1),
                    src: NodeId::new(1),
                    tgt: NodeId::new(2),
                    label: Some(sid(9)),
                    props: vec![],
                },
            ],
            |n| {
                if n == NodeId::new(1) {
                    &l1[..]
                } else {
                    &l2[..]
                }
            },
        );
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.rel_count(), 1);
        assert_eq!(s.update_count(), 3);
        assert_eq!(s.label_count(sid(1)), 2);
        assert_eq!(s.label_count(sid(2)), 1);
        assert_eq!(s.type_count(sid(9)), 1);
        // min rule.
        assert_eq!(s.pattern_count(Some(sid(1)), sid(9), Some(sid(2))), 1);
        assert_eq!(s.pattern_count(None, sid(9), Some(sid(2))), 1);
        assert_eq!(
            s.pattern_count(Some(sid(2)), sid(9), None),
            0,
            "label 2 is only on the target"
        );
        assert_eq!(s.pattern_count(Some(sid(3)), sid(9), None), 0);
        s.record_commit(&[Update::DeleteRel { id: RelId::new(1) }], no_labels);
        assert_eq!(s.rel_count(), 0);
        assert_eq!(s.update_count(), 4);
    }

    #[test]
    fn expand_fraction_grows_with_hops() {
        let s = Statistics::new();
        // 100 nodes, 300 rels → avg degree 3.
        let mut batch = Vec::new();
        for i in 0..100 {
            batch.push(Update::AddNode {
                id: NodeId::new(i),
                labels: vec![],
                props: vec![],
            });
        }
        for i in 0..300u64 {
            batch.push(Update::AddRel {
                id: RelId::new(i),
                src: NodeId::new(i % 100),
                tgt: NodeId::new((i + 1) % 100),
                label: None,
                props: vec![],
            });
        }
        s.record_commit(&batch, no_labels);
        let f1 = s.estimate_expand_fraction(1, 1);
        let f2 = s.estimate_expand_fraction(1, 2);
        let f8 = s.estimate_expand_fraction(1, 8);
        assert!(f1 < f2 && f2 < f8);
        assert!(f1 > 0.0);
        assert_eq!(f8, 1.0, "degree 3, 8 hops saturates 100 nodes");
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = Statistics::new();
        assert_eq!(s.avg_degree(), 0.0);
        assert_eq!(s.estimate_expand_fraction(1, 4), 0.0);
        assert_eq!(s.pattern_count(None, sid(1), None), 0);
    }
}
