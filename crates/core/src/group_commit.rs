//! Group commit (ROADMAP item 1): a dedicated log-writer thread that
//! coalesces concurrent commits into one `TimeStore` append run and one
//! durability fsync.
//!
//! Committers validate their batch on their own thread, enqueue a
//! [`CommitRequest`] and park on a [`CommitSlot`]. The writer drains the
//! queue (waiting up to [`AionConfig::commit_latency_budget`] for more
//! arrivals when every acknowledgement implies an fsync), appends every
//! batch in arrival order, performs a single [`TimeStore::sync`] for the
//! whole group, and only then wakes the waiters — so with
//! `sync_on_commit` the durability-before-ack contract is preserved while
//! N concurrent commits share one fsync instead of paying N.
//!
//! Failure semantics per request:
//!
//! * A forced timestamp below the clock is rejected with
//!   [`GraphError::NonMonotonicCommit`] before anything is written; the
//!   clock does not move, so a replayer retrying a transiently failed
//!   frame is never mistaken for a re-delivery.
//! * An append error with `TimeStore::latest_ts() < ts` is a *clean*
//!   rejection: the frame never reached the log, the timestamp stays
//!   available, and later commits are unaffected.
//! * An append error with `latest_ts() >= ts` (or a failed group fsync)
//!   leaves the commit's durability *uncertain*: the timestamp is
//!   consumed and the LineageStore is wedged so its watermark cannot
//!   advance past the hole (see `cascade`).
//!
//! The writer submits successful commits to the lineage cascade in commit
//! order on its own thread; the statistics fold and after-commit
//! listeners run on the committer's thread after it wakes, off the
//! write-path critical section.
//!
//! [`AionConfig::commit_latency_budget`]: crate::AionConfig::commit_latency_budget
//! [`TimeStore::sync`]: timestore::TimeStore::sync

use crate::cascade::Cascade;
use crate::txn::CommitEvent;
use crossbeam_channel::{unbounded, Receiver, Sender};
use lineagestore::LineageStore;
use lpg::{Graph, GraphError, Result, Timestamp, Update};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use timestore::TimeStore;

/// What the writer hands back to a successful committer: the commit event
/// (for the after-commit listeners) and the latest graph as of *this*
/// commit's apply (for the statistics fold — labels are resolved against
/// the graph the commit produced, not whatever is latest once the
/// committer thread gets scheduled).
pub(crate) struct CommitDone {
    pub event: CommitEvent,
    pub graph: Arc<Graph>,
}

/// One committer's parking spot. The writer publishes exactly one result.
struct CommitSlot {
    state: Mutex<Option<Result<CommitDone>>>,
    cond: Condvar,
}

impl CommitSlot {
    fn new() -> CommitSlot {
        CommitSlot {
            state: Mutex::new(None),
            cond: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<CommitDone>) {
        // Poisoning cannot happen (neither side panics while holding the
        // lock), but recover rather than unwrap to keep the path abort-free.
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = Some(result);
        self.cond.notify_all();
    }

    /// Parks the committer until the writer publishes its result. (Named
    /// to stay distinct from `Condvar::wait`, which releases the lock
    /// while blocked — the lock-order analyzer resolves bare calls by
    /// name and must not mistake the reacquisition for lock nesting.)
    fn wait_done(&self) -> Result<CommitDone> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A validated update batch travelling committer → writer.
struct CommitRequest {
    updates: Vec<Update>,
    forced_ts: Option<Timestamp>,
    slot: Arc<CommitSlot>,
}

/// Everything the log-writer thread owns or shares with [`Aion`].
///
/// [`Aion`]: crate::Aion
pub(crate) struct LogWriter {
    pub timestore: Arc<TimeStore>,
    pub lineage: Arc<LineageStore>,
    pub cascade: Option<Arc<Cascade>>,
    pub lineage_wedged: Arc<AtomicBool>,
    pub sync_on_commit: bool,
    /// How long the writer may hold an fsync open waiting for more
    /// committers to join the group. Zero (the default) means groups form
    /// only from natural queueing while the previous group's I/O runs.
    pub latency_budget: Duration,
    /// The next system timestamp. Only this thread assigns timestamps, so
    /// a plain field replaces the old atomic; it advances only once an
    /// append reaches the log (clean failures leave it untouched).
    pub next_ts: Timestamp,
    pub commits: Arc<obs::Counter>,
    pub commits_failed: Arc<obs::Counter>,
    pub group_size: Arc<obs::Histogram>,
}

impl LogWriter {
    fn run(mut self, rx: Receiver<CommitRequest>) {
        // Queued requests are still delivered after the sender drops, so
        // shutdown drains the queue before the thread exits and no
        // committer is left parked.
        while let Ok(first) = rx.recv() {
            let group = self.collect_group(&rx, first);
            self.process_group(group);
        }
    }

    /// Drains whatever is queued behind `first`; when each ack implies an
    /// fsync and a latency budget is configured, keeps the group open for
    /// late arrivals until the budget expires.
    fn collect_group(
        &self,
        rx: &Receiver<CommitRequest>,
        first: CommitRequest,
    ) -> Vec<CommitRequest> {
        let mut group = vec![first];
        while let Ok(req) = rx.try_recv() {
            group.push(req);
        }
        if self.sync_on_commit && !self.latency_budget.is_zero() {
            let deadline = Instant::now() + self.latency_budget;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(req) => {
                        group.push(req);
                        while let Ok(req) = rx.try_recv() {
                            group.push(req);
                        }
                    }
                    Err(_) => break, // budget expired, or shutting down
                }
            }
        }
        group
    }

    fn process_group(&mut self, group: Vec<CommitRequest>) {
        // Stage 2a: one append run over the whole group, in arrival order.
        let mut appended: Vec<(Arc<CommitSlot>, CommitEvent, Arc<Graph>)> =
            Vec::with_capacity(group.len());
        for req in group {
            let ts = match req.forced_ts {
                // Keep the internal clock strictly ahead of explicit
                // commits. The clock only reflects appends that reached
                // the log, so this rejection really means "already
                // committed" — replayers rely on that to treat it as
                // idempotent re-delivery.
                Some(ts) if ts < self.next_ts => {
                    self.commits_failed.inc();
                    req.slot.complete(Err(GraphError::NonMonotonicCommit {
                        attempted: ts,
                        latest: self.next_ts.saturating_sub(1),
                    }));
                    continue;
                }
                Some(ts) => ts,
                None => self.next_ts,
            };
            match self.timestore.append_commit(ts, &req.updates) {
                Ok(()) => {
                    self.next_ts = ts + 1;
                    let graph = self.timestore.latest_graph();
                    let event = CommitEvent {
                        ts,
                        updates: Arc::new(req.updates),
                    };
                    appended.push((req.slot, event, graph));
                }
                Err(e) => {
                    if self.timestore.latest_ts() >= ts {
                        // The frame reached the log before the failure:
                        // durability unknown, recovery may replay it.
                        // Consume the timestamp and wedge the
                        // LineageStore so later commits cannot advance
                        // its watermark past the hole.
                        self.next_ts = ts + 1;
                        self.lineage_wedged.store(true, Ordering::Release);
                    }
                    self.commits_failed.inc();
                    req.slot.complete(Err(e));
                }
            }
        }
        if appended.is_empty() {
            return;
        }
        self.group_size.record(appended.len() as u64);
        // Stage 2a': one durability point for the whole group.
        if self.sync_on_commit {
            if let Err(e) = self.timestore.sync() {
                // The shared fsync failed, so *every* commit in the group
                // has unknown durability: wedge and fail them all.
                self.lineage_wedged.store(true, Ordering::Release);
                let msg = format!("group commit sync failed: {e}");
                let mut first_err = Some(e);
                for (slot, _, _) in appended {
                    self.commits_failed.inc();
                    let err = first_err
                        .take()
                        .unwrap_or_else(|| GraphError::Storage(msg.clone()));
                    slot.complete(Err(err));
                }
                return;
            }
        }
        // Stage 2b: LineageStore, in commit order on this thread (the
        // cascade channel preserves it; the synchronous path applies
        // here). Wedged, the watermark stalls and queries fall back to
        // the TimeStore — same contract as before group commit.
        for (slot, event, graph) in appended {
            if !self.lineage_wedged.load(Ordering::Acquire) {
                match &self.cascade {
                    Some(c) => c.submit(event.clone()),
                    None => {
                        if let Err(e) = self.lineage.apply_commit(event.ts, &event.updates) {
                            self.lineage_wedged.store(true, Ordering::Release);
                            self.commits_failed.inc();
                            slot.complete(Err(e));
                            continue;
                        }
                    }
                }
            }
            self.commits.inc();
            slot.complete(Ok(CommitDone { event, graph }));
        }
    }
}

/// Handle through which [`Aion`] talks to the log-writer thread. Dropping
/// it closes the queue and joins the writer (which first drains anything
/// still enqueued).
///
/// [`Aion`]: crate::Aion
pub(crate) struct Pipeline {
    tx: Option<Sender<CommitRequest>>,
    worker: Option<JoinHandle<()>>,
}

impl Pipeline {
    pub(crate) fn spawn(writer: LogWriter) -> Result<Pipeline> {
        let (tx, rx) = unbounded::<CommitRequest>();
        let worker = std::thread::Builder::new()
            .name("aion-log-writer".into())
            .spawn(move || writer.run(rx))
            .map_err(|e| GraphError::Storage(format!("spawn log writer: {e}")))?;
        Ok(Pipeline {
            tx: Some(tx),
            worker: Some(worker),
        })
    }

    /// Enqueues one validated batch and parks until the writer resolves it.
    pub(crate) fn commit(
        &self,
        updates: Vec<Update>,
        forced_ts: Option<Timestamp>,
    ) -> Result<CommitDone> {
        let slot = Arc::new(CommitSlot::new());
        let req = CommitRequest {
            updates,
            forced_ts,
            slot: slot.clone(),
        };
        let sent = match &self.tx {
            Some(tx) => tx.send(req).is_ok(),
            None => false,
        };
        if !sent {
            return Err(GraphError::Storage("commit pipeline is shut down".into()));
        }
        slot.wait_done()
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}
