//! Application-time handling (Sec. 4.5).
//!
//! Aion deliberately does *not* index application time: "we decided to
//! store application start and end time as graph properties. When querying
//! with both time dimensions, a valid (sub)graph with respect to system
//! time is retrieved first, and then a filter is applied for the
//! application time. If the application time is not set as a property, we
//! fall back to using the system time."

use crate::txn::AppTimeKeys;
use lpg::{Interval, PropertyValue, Props, TimeRange, Version, TS_MAX};

/// Reads an entity's application-time validity from its property bag.
/// `None` when no application start time is set.
pub fn app_interval(props: &Props, keys: AppTimeKeys) -> Option<Interval> {
    let get = |key| {
        props
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v): &(_, PropertyValue)| v.as_int())
            .map(|v| v.max(0) as u64)
    };
    let start = get(keys.start)?;
    let end = get(keys.end).unwrap_or(TS_MAX);
    (start < end).then(|| Interval::new(start, end))
}

/// Whether an entity (by its property bag) is visible to an application-
/// time range. Entities without application time fall back to system time,
/// i.e. they pass (system-time filtering already happened upstream).
pub fn matches_app_time(props: &Props, range: TimeRange, keys: AppTimeKeys) -> bool {
    match app_interval(props, keys) {
        Some(iv) => range.matches(&iv),
        None => true,
    }
}

/// Filters system-time versions by an application-time range; the version
/// payload must expose its property bag.
pub fn filter_versions<T: HasProps>(
    versions: Vec<Version<T>>,
    range: TimeRange,
    keys: AppTimeKeys,
) -> Vec<Version<T>> {
    versions
        .into_iter()
        .filter(|v| matches_app_time(v.data.props(), range, keys))
        .collect()
}

/// Anything carrying a property bag (nodes and relationships).
pub trait HasProps {
    /// The entity's property bag.
    fn props(&self) -> &Props;
}

impl HasProps for lpg::Node {
    fn props(&self) -> &Props {
        &self.props
    }
}

impl HasProps for lpg::Relationship {
    fn props(&self) -> &Props {
        &self.props
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{Node, NodeId, StrId};

    fn keys() -> AppTimeKeys {
        AppTimeKeys {
            start: StrId::new(100),
            end: StrId::new(101),
        }
    }

    fn props(start: Option<i64>, end: Option<i64>) -> Props {
        let mut p = Props::new();
        if let Some(s) = start {
            p.push((keys().start, PropertyValue::Int(s)));
        }
        if let Some(e) = end {
            p.push((keys().end, PropertyValue::Int(e)));
        }
        p.sort_by_key(|(k, _)| *k);
        p
    }

    #[test]
    fn interval_extraction() {
        assert_eq!(app_interval(&props(None, None), keys()), None);
        assert_eq!(
            app_interval(&props(Some(5), None), keys()),
            Some(Interval::open_ended(5))
        );
        assert_eq!(
            app_interval(&props(Some(5), Some(9)), keys()),
            Some(Interval::new(5, 9))
        );
        // Inverted interval is treated as unset.
        assert_eq!(app_interval(&props(Some(9), Some(5)), keys()), None);
    }

    #[test]
    fn filtering_and_fallback() {
        // CONTAINED IN (4, 6) = [4, 6].
        let range = TimeRange::ContainedIn(4, 6);
        assert!(matches_app_time(&props(Some(5), Some(9)), range, keys()));
        assert!(!matches_app_time(&props(Some(7), Some(9)), range, keys()));
        // Fallback: entity without application time passes.
        assert!(matches_app_time(&props(None, None), range, keys()));
    }

    #[test]
    fn version_filtering() {
        let mk = |start| {
            Version::new(
                0,
                10,
                Node::new(NodeId::new(1), vec![], props(Some(start), Some(start + 2))),
            )
        };
        let versions = vec![mk(1), mk(5), mk(20)];
        let kept = filter_versions(versions, TimeRange::Between(4, 8), keys());
        assert_eq!(kept.len(), 1);
        assert_eq!(
            app_interval(kept[0].data.props(), keys()),
            Some(Interval::new(5, 7))
        );
    }
}
