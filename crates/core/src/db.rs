//! [`Aion`] — the assembled temporal graph DBMS.

use crate::bitemporal;
use crate::cascade::Cascade;
use crate::group_commit::{self, LogWriter};
use crate::planner::{AccessPattern, Planner};
use crate::stats::Statistics;
use crate::txn::{AppTimeKeys, CommitEvent, WriteTxn};
use lineagestore::{LineageStore, LineageStoreConfig};
use lpg::{
    Direction, Graph, GraphError, Interner, Node, NodeId, RelId, Relationship, Result,
    TemporalGraph, TimeRange, Timestamp, TimestampedUpdate, Update, Version,
};
use parking_lot::RwLock;
use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use timestore::{TimeStore, TimeStoreConfig};
use vfs::VfsRef;

pub use crate::planner::StoreChoice;

/// Configuration of an [`Aion`] instance.
#[derive(Clone, Debug)]
pub struct AionConfig {
    /// Data directory.
    pub dir: PathBuf,
    /// TimeStore tuning.
    pub timestore: TimeStoreConfig,
    /// LineageStore tuning.
    pub lineage: LineageStoreConfig,
    /// Apply the LineageStore synchronously with each commit (the `TS+LS`
    /// configuration of Fig. 9). Default `false`: background cascade.
    pub sync_lineage: bool,
    /// Fsync the TimeStore after every commit before acknowledging it.
    /// Default `false`: commits become durable only at an explicit
    /// [`Aion::sync`] (group durability — the paper's ingest numbers assume
    /// batched flushing). With `true`, every acknowledged commit survives a
    /// crash, at the cost of one fsync per commit.
    pub sync_on_commit: bool,
    /// How long the group-commit log writer may keep a durability group
    /// open waiting for more concurrent committers, trading commit
    /// latency for fsync amortization. Only meaningful with
    /// [`sync_on_commit`]: that is when every acknowledgement costs an
    /// fsync worth sharing. The default (zero) adds no latency — groups
    /// then form only from the natural queueing that happens while the
    /// previous group's I/O is in flight.
    ///
    /// [`sync_on_commit`]: AionConfig::sync_on_commit
    pub commit_latency_budget: Duration,
    /// Planner threshold (fraction of graph accessed; paper: 0.3).
    pub planner_threshold: f64,
    /// The file system every storage layer runs on. Defaults to the
    /// production passthrough ([`VfsRef::std`]); the crash-consistency
    /// harness swaps in [`vfs::SimVfs`]. Overrides the `vfs` handles inside
    /// `timestore` and `lineage` sub-configs.
    pub vfs: VfsRef,
}

impl AionConfig {
    /// Defaults rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> AionConfig {
        AionConfig {
            dir: dir.into(),
            timestore: TimeStoreConfig::default(),
            lineage: LineageStoreConfig::default(),
            sync_lineage: false,
            sync_on_commit: false,
            commit_latency_budget: Duration::ZERO,
            planner_threshold: 0.3,
            vfs: VfsRef::std(),
        }
    }
}

type Listener = Box<dyn Fn(&CommitEvent) + Send + Sync>;

/// The transactional temporal graph DBMS (Fig. 4).
///
/// ```
/// use aion::{Aion, AionConfig};
/// use lpg::NodeId;
///
/// let dir = tempfile::tempdir().unwrap();
/// let db = Aion::open(AionConfig::new(dir.path())).unwrap();
/// let name = db.intern("name");
///
/// // Commits get monotonically increasing system timestamps.
/// let t1 = db.write(|txn| txn.add_node(NodeId::new(1), vec![], vec![])).unwrap();
/// let t2 = db.write(|txn| {
///     txn.set_node_prop(NodeId::new(1), name, lpg::PropertyValue::Int(7))
/// }).unwrap();
///
/// // Time travel: the node had no property at t1.
/// assert!(db.get_graph_at(t1).unwrap().node(NodeId::new(1)).unwrap().prop(name).is_none());
/// assert!(db.get_graph_at(t2).unwrap().node(NodeId::new(1)).unwrap().prop(name).is_some());
///
/// // Point history: two versions with adjacent validity intervals.
/// db.lineage_barrier(t2);
/// let versions = db.get_node(NodeId::new(1), 0, t2 + 1).unwrap();
/// assert_eq!(versions.len(), 2);
/// ```
pub struct Aion {
    interner: Arc<Interner>,
    timestore: Arc<TimeStore>,
    lineage: Arc<LineageStore>,
    cascade: Option<Arc<Cascade>>,
    stats: Statistics,
    planner: Planner,
    app_keys: AppTimeKeys,
    lineage_wedged: Arc<AtomicBool>,
    /// The group-commit log writer (see [`crate::group_commit`]): all
    /// commits funnel through its queue, so there is no commit lock —
    /// ordering comes from the single writer thread.
    pipeline: group_commit::Pipeline,
    listeners: RwLock<Vec<Listener>>,
    commit_latency: Arc<obs::Histogram>,
    forced_flushes: Arc<obs::Counter>,
    /// Replication-epoch fence (DESIGN.md §17). `held` is the highest
    /// epoch this node ever owned as primary; `max_seen` the highest it
    /// has observed anywhere in the cluster. `max_seen > held` means a
    /// newer primary exists and direct writes must be refused
    /// ([`GraphError::Fenced`]) — accepting one would fork history.
    /// Replicated applies bypass the fence: they carry the *new*
    /// primary's commits and are exactly what a demoted node should
    /// accept.
    held_epoch: AtomicU64,
    max_seen_epoch: AtomicU64,
}

impl Aion {
    /// Opens (or creates) a database, recovering both stores and catching
    /// the LineageStore up with the TimeStore log if it lags (crash during
    /// the asynchronous cascade).
    pub fn open(config: AionConfig) -> Result<Aion> {
        let fs = config.vfs.clone();
        fs.create_dir_all(&config.dir)?;
        let mut ts_config = config.timestore.clone();
        ts_config.vfs = fs.clone();
        let timestore = Arc::new(TimeStore::open(config.dir.join("timestore"), ts_config)?);
        // The LineageStore is derived state: open it with page verification
        // on, and if that (or catch-up replay) fails — torn pages from a
        // crash mid-cascade, a corrupt index — wipe it and rebuild from the
        // TimeStore log, which is the source of truth.
        let mut ls_config = config.lineage.clone();
        ls_config.vfs = fs.clone();
        ls_config.verify_pages = true;
        let lineage_path = config.dir.join("lineage.db");
        let lineage = match Self::open_lineage(&timestore, &lineage_path, ls_config.clone()) {
            Ok(l) => l,
            Err(_) => {
                let _ = fs.remove_file(&lineage_path);
                let _ = fs.remove_file(&pagestore::PageStore::sums_path(&lineage_path));
                Self::open_lineage(&timestore, &lineage_path, ls_config)?
            }
        };
        let interner = Arc::new(Interner::new());
        let app_keys = AppTimeKeys {
            start: interner.intern("_app_start"),
            end: interner.intern("_app_end"),
        };
        // Rebuild statistics from the latest graph (labels/types at the
        // current state; history size from the store counters).
        let stats = Statistics::new();
        {
            let latest_graph = timestore.latest_graph();
            let mut batch = Vec::new();
            for n in latest_graph.nodes() {
                batch.push(Update::AddNode {
                    id: n.id,
                    labels: n.labels.clone(),
                    props: vec![],
                });
            }
            for r in latest_graph.rels() {
                batch.push(Update::AddRel {
                    id: r.id,
                    src: r.src,
                    tgt: r.tgt,
                    label: r.label,
                    props: vec![],
                });
            }
            stats.record_commit(&batch, |id| {
                latest_graph
                    .node(id)
                    .map(|n| n.labels.as_slice())
                    .unwrap_or(&[])
            });
        }
        let cascade = if config.sync_lineage {
            None
        } else {
            Some(Arc::new(Cascade::spawn(lineage.clone())?))
        };
        let lineage_wedged = Arc::new(AtomicBool::new(false));
        let pipeline = group_commit::Pipeline::spawn(LogWriter {
            timestore: timestore.clone(),
            lineage: lineage.clone(),
            cascade: cascade.clone(),
            lineage_wedged: lineage_wedged.clone(),
            sync_on_commit: config.sync_on_commit,
            latency_budget: config.commit_latency_budget,
            next_ts: timestore.latest_ts() + 1,
            commits: obs::counter("core.commits"),
            commits_failed: obs::counter("core.commits_failed"),
            group_size: obs::histogram("core.group_commit.size"),
        })?;
        Ok(Aion {
            interner,
            lineage_wedged,
            timestore,
            lineage,
            cascade,
            stats,
            planner: Planner::with_threshold(config.planner_threshold),
            app_keys,
            pipeline,
            listeners: RwLock::new(Vec::new()),
            commit_latency: obs::histogram("core.commit.latency_ns"),
            forced_flushes: obs::counter("core.group_commit.forced_flushes"),
            held_epoch: AtomicU64::new(0),
            max_seen_epoch: AtomicU64::new(0),
        })
    }

    /// Opens the LineageStore and replays any TimeStore commits it missed
    /// (crash during the asynchronous cascade).
    fn open_lineage(
        timestore: &TimeStore,
        path: &std::path::Path,
        config: LineageStoreConfig,
    ) -> Result<Arc<LineageStore>> {
        let lineage = Arc::new(LineageStore::open(path, config)?);
        // Catch-up replay: the TimeStore log is the source of truth.
        let lag_from = lineage.applied_ts();
        let latest = timestore.latest_ts();
        if lag_from < latest {
            let pending = timestore.diff(lag_from + 1, latest.saturating_add(1))?;
            let mut batch_ts = None;
            let mut batch: Vec<Update> = Vec::new();
            for u in pending {
                if batch_ts != Some(u.ts) {
                    if let Some(ts) = batch_ts {
                        lineage.apply_commit(ts, &batch)?;
                        batch.clear();
                    }
                    batch_ts = Some(u.ts);
                }
                batch.push(u.op);
            }
            if let Some(ts) = batch_ts {
                lineage.apply_commit(ts, &batch)?;
            }
        }
        Ok(lineage)
    }

    /// The database string store.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Interns a label/key/value string.
    pub fn intern(&self, s: &str) -> lpg::StrId {
        self.interner.intern(s)
    }

    /// Application-time property keys.
    pub fn app_time_keys(&self) -> AppTimeKeys {
        self.app_keys
    }

    /// Base statistics (cardinality histograms).
    pub fn statistics(&self) -> &Statistics {
        &self.stats
    }

    /// The planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Direct TimeStore access (benchmarks and ablations).
    pub fn timestore(&self) -> &TimeStore {
        &self.timestore
    }

    /// Direct LineageStore access (benchmarks and ablations).
    pub fn lineagestore(&self) -> &Arc<LineageStore> {
        &self.lineage
    }

    /// A point-in-time snapshot of every metric the process has recorded:
    /// pagestore cache behaviour, btree structure work, timestore log and
    /// snapshot activity, lineagestore ingest/expand traffic, query stage
    /// timings and commit latency. Counters are process-global, so the
    /// snapshot also reflects other [`Aion`] instances in this process.
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        obs::snapshot()
    }

    /// Audits both stores and their agreement at `level`; see
    /// [`check::CheckLevel`] for what each level covers. A clean report
    /// ([`check::ConsistencyReport::is_clean`]) means every invariant held.
    pub fn check_consistency(&self, level: check::CheckLevel) -> Result<check::ConsistencyReport> {
        check::check_stores(&self.timestore, &self.lineage, level)
    }

    /// Registers an after-commit event listener (Sec. 5.1: "graph updates
    /// are passed to Aion from Neo4j via an event listener … triggered in
    /// the after-commit phase of each write transaction").
    pub fn register_listener(&self, f: impl Fn(&CommitEvent) + Send + Sync + 'static) {
        self.listeners.write().push(Box::new(f));
    }

    // ----------------------------------------------------- epoch fencing

    /// Declares this node the owner of `epoch` (it was just promoted, or
    /// restarted as a primary that had persisted this epoch). Also raises
    /// `max_seen`, so holding an epoch always implies having seen it.
    pub fn set_held_epoch(&self, epoch: u64) {
        self.held_epoch.fetch_max(epoch, Ordering::AcqRel);
        self.max_seen_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Records that `epoch` exists somewhere in the cluster (seen in a
    /// replication handshake, frame, or heartbeat). Monotone: epochs are
    /// only ever raised. If this exceeds the held epoch, direct writes
    /// start failing with [`GraphError::Fenced`].
    pub fn observe_epoch(&self, epoch: u64) {
        self.max_seen_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The highest epoch this node ever owned as primary (0 = never
    /// explicitly promoted; the seed single-node deployment).
    pub fn held_epoch(&self) -> u64 {
        self.held_epoch.load(Ordering::Acquire)
    }

    /// The highest epoch this node has observed anywhere.
    pub fn max_seen_epoch(&self) -> u64 {
        self.max_seen_epoch.load(Ordering::Acquire)
    }

    /// Whether direct writes are currently fenced (a newer epoch exists).
    pub fn is_fenced(&self) -> bool {
        self.max_seen_epoch.load(Ordering::Acquire) > self.held_epoch.load(Ordering::Acquire)
    }

    /// The fence gate on the direct write path. Checked *before* the
    /// commit pipeline so a deposed primary's write never consumes a
    /// timestamp or touches the log.
    fn check_fence(&self) -> Result<()> {
        let held = self.held_epoch.load(Ordering::Acquire);
        let seen = self.max_seen_epoch.load(Ordering::Acquire);
        if seen > held {
            return Err(GraphError::Fenced { held, seen });
        }
        Ok(())
    }

    // ------------------------------------------------------------ writes

    /// Latest committed timestamp.
    pub fn latest_ts(&self) -> Timestamp {
        self.timestore.latest_ts()
    }

    /// The latest graph version (unaffected by temporal machinery).
    pub fn latest_graph(&self) -> Arc<Graph> {
        self.timestore.latest_graph()
    }

    /// Starts a write transaction against the latest graph.
    pub fn begin(&self) -> (Arc<Graph>, AppTimeKeys) {
        (self.latest_graph(), self.app_keys)
    }

    /// Runs `f` inside a write transaction and commits it, returning the
    /// commit timestamp. On error nothing is persisted.
    pub fn write<F>(&self, f: F) -> Result<Timestamp>
    where
        F: FnOnce(&mut WriteTxn<'_>) -> Result<()>,
    {
        self.check_fence()?;
        let updates = {
            // The base Arc must drop before commit: a live reference would
            // force the copy-on-write latest graph to deep-copy on apply.
            let base = self.latest_graph();
            let mut txn = WriteTxn::new(&base, self.app_keys);
            f(&mut txn)?;
            txn.into_updates()
        };
        self.commit(updates, None)
    }

    /// Like [`write`], but commits at an explicit system timestamp (which
    /// must exceed the latest committed one). Useful when replaying an
    /// external event stream whose event times should become system time —
    /// e.g. bulk-loading the evaluation datasets with their original
    /// ordering (Sec. 6.1).
    ///
    /// [`write`]: Aion::write
    pub fn write_at<F>(&self, ts: Timestamp, f: F) -> Result<Timestamp>
    where
        F: FnOnce(&mut WriteTxn<'_>) -> Result<()>,
    {
        self.check_fence()?;
        let updates = {
            let base = self.latest_graph();
            let mut txn = WriteTxn::new(&base, self.app_keys);
            f(&mut txn)?;
            txn.into_updates()
        };
        self.commit(updates, Some(ts))
    }

    /// Applies one replicated commit at its original timestamp. Used by
    /// the replication replayer (`crates/repl`): the batch was already
    /// validated on the primary and decoded from its commit log, so it
    /// goes straight to the commit pipeline without `WriteTxn`
    /// re-validation. Monotonicity is still enforced — a frame at or
    /// below the local latest timestamp fails with
    /// [`GraphError::NonMonotonicCommit`], which replayers use to make
    /// re-delivery after reconnect idempotent (skip, don't re-apply).
    pub fn apply_replicated(&self, ts: Timestamp, updates: Vec<Update>) -> Result<Timestamp> {
        self.commit(updates, Some(ts))
    }

    /// Commits a validated update batch (stage 1 + 2 of Fig. 4) through
    /// the group-commit pipeline: enqueue, park until the log writer has
    /// appended the group (and group-fsynced it under `sync_on_commit`),
    /// then run the commit's bookkeeping on this thread.
    fn commit(&self, updates: Vec<Update>, forced_ts: Option<Timestamp>) -> Result<Timestamp> {
        let _timer = self.commit_latency.start_timer();
        let done = self.pipeline.commit(updates, forced_ts)?;
        // Statistics fold and stage-1 after-commit listeners run here on
        // the committer's thread, off the writer's critical path — a slow
        // listener delays its own commit's return, never other writers.
        // Labels resolve against the graph this commit produced.
        self.stats.record_commit(&done.event.updates, |id| {
            done.graph
                .node(id)
                .map(|n| n.labels.as_slice())
                .unwrap_or(&[])
        });
        for l in self.listeners.read().iter() {
            l(&done.event);
        }
        Ok(done.event.ts)
    }

    /// Blocks until the LineageStore caught up with `ts` (tests, recovery).
    pub fn lineage_barrier(&self, ts: Timestamp) {
        if let Some(c) = &self.cascade {
            c.barrier(ts);
        }
    }

    /// Whether the LineageStore applier hit an error and stopped advancing
    /// (queries fall back to the TimeStore; a reopen replays the gap).
    pub fn lineage_wedged(&self) -> bool {
        match &self.cascade {
            Some(c) => c.is_wedged(),
            None => self.lineage_wedged.load(Ordering::Acquire),
        }
    }

    /// Whether the LineageStore can serve queries up to `ts`.
    fn lineage_current(&self, ts: Timestamp) -> bool {
        let applied = match &self.cascade {
            Some(c) => c.applied_ts(),
            None => self.lineage.applied_ts(),
        };
        applied >= ts.min(self.timestore.latest_ts())
    }

    // --------------------------------------------------- Table 1: points

    /// `getNode(nodeId, start, end)` — node history over `[start, end)`;
    /// `start == end` is the point lookup.
    pub fn get_node(
        &self,
        id: NodeId,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Version<Node>>> {
        if self.lineage_current(end.max(start)) {
            return self.lineage.node_history(id, start, end);
        }
        // Fallback: the TimeStore serves the query (Sec. 5.1). Base state
        // from the (usually cached) snapshot, then a per-entity replay of
        // the diff window — never a whole-graph materialization.
        let end = end.max(start.saturating_add(1));
        let base = self.timestore.snapshot_at(start)?;
        let mut state = base.node(id).cloned();
        let updates = self.timestore.diff(start.saturating_add(1), end)?;
        entity_versions(
            start,
            end,
            &mut state,
            updates
                .iter()
                .filter(|u| u.op.entity() == lpg::EntityId::Node(id)),
        )
    }

    /// `getRelationship(relId, start, end)`.
    pub fn get_relationship(
        &self,
        id: RelId,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Version<Relationship>>> {
        if self.lineage_current(end.max(start)) {
            return self.lineage.rel_history(id, start, end);
        }
        let end = end.max(start.saturating_add(1));
        let base = self.timestore.snapshot_at(start)?;
        let mut state = base.rel(id).cloned();
        let updates = self.timestore.diff(start.saturating_add(1), end)?;
        rel_versions(
            start,
            end,
            &mut state,
            updates
                .iter()
                .filter(|u| u.op.entity() == lpg::EntityId::Rel(id)),
        )
    }

    /// `getRelationships(nodeId, direction, start, end)` — one version list
    /// per relationship incident to `id` during the window.
    pub fn get_relationships(
        &self,
        id: NodeId,
        dir: Direction,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Vec<Version<Relationship>>>> {
        if self.lineage_current(end.max(start)) {
            return self.lineage.rels_history(id, dir, start, end);
        }
        // Fallback: incident rel ids from the base snapshot's adjacency plus
        // any touched by the diff window, then one per-rel history each.
        let end = end.max(start.saturating_add(1));
        let base = self.timestore.snapshot_at(start)?;
        let mut rel_ids: Vec<RelId> = base.relationships(id, dir);
        for u in self.timestore.diff(start.saturating_add(1), end)? {
            if let Update::AddRel {
                id: rid, src, tgt, ..
            } = &u.op
            {
                if (dir.includes_out() && *src == id) || (dir.includes_in() && *tgt == id) {
                    rel_ids.push(*rid);
                }
            }
        }
        rel_ids.sort_unstable();
        rel_ids.dedup();
        let mut out = Vec::new();
        for rid in rel_ids {
            let hist = self.get_relationship(rid, start, end)?;
            if !hist.is_empty() {
                out.push(hist);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------- Table 1: subgraph

    /// `expand(nodeId, direction, hops, t)` — planner-routed (Sec. 5.1):
    /// small expansions go to the LineageStore, large ones materialize a
    /// snapshot in the TimeStore.
    pub fn expand(
        &self,
        id: NodeId,
        dir: Direction,
        hops: u32,
        t: Timestamp,
    ) -> Result<Vec<(NodeId, u32)>> {
        let pattern = AccessPattern::Expand { seeds: 1, hops };
        let choice = self.planner.choose(&self.stats, pattern);
        match choice {
            StoreChoice::Lineage if self.lineage_current(t) => {
                let hits = self.lineage.expand(id, dir, hops, t)?;
                Ok(hits.into_iter().map(|h| (h.node.id, h.hop)).collect())
            }
            _ => self.expand_via_snapshot(id, dir, hops, t),
        }
    }

    /// Expansion over a materialized snapshot (the TimeStore path).
    pub fn expand_via_snapshot(
        &self,
        id: NodeId,
        dir: Direction,
        hops: u32,
        t: Timestamp,
    ) -> Result<Vec<(NodeId, u32)>> {
        let g = self.timestore.snapshot_at(t)?;
        if !g.has_node(id) {
            return Err(GraphError::NodeNotFound(id));
        }
        let mut out = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
        seen.insert(id);
        queue.push_back((id, 0));
        while let Some((cur, hop)) = queue.pop_front() {
            if hop == hops {
                continue;
            }
            for rid in g.relationships(cur, dir) {
                let Some(rel) = g.rel(rid) else { continue };
                let n = match dir {
                    Direction::Outgoing => rel.tgt,
                    Direction::Incoming => rel.src,
                    // `relationships(cur, ..)` only yields incident rels,
                    // so `other_end` cannot miss; skip rather than panic.
                    Direction::Both => match rel.other_end(cur) {
                        Some(n) => n,
                        None => continue,
                    },
                };
                if seen.insert(n) {
                    out.push((n, hop + 1));
                    queue.push_back((n, hop + 1));
                }
            }
        }
        Ok(out)
    }

    // --------------------------------------------------- Table 1: global

    /// `getDiff(start, end)` — all updates in `[start, end)`.
    pub fn get_diff(&self, start: Timestamp, end: Timestamp) -> Result<Vec<TimestampedUpdate>> {
        self.timestore.diff(start, end)
    }

    /// `getGraph(t)` — the snapshot at `t`.
    pub fn get_graph_at(&self, t: Timestamp) -> Result<Arc<Graph>> {
        self.timestore.snapshot_at(t)
    }

    /// Lazy ascending-id stream of the nodes alive at `ts`, starting
    /// strictly after `after`. Prefers the lineage index (O(log n) to the
    /// resume point, O(1) memory); falls back to a pinned TimeStore
    /// snapshot while the lineage applier lags or is wedged. Both sources
    /// yield the identical sequence, so pagination cursors are
    /// source-independent. See [`crate::stream::NodeStream`].
    pub fn stream_nodes_at(
        &self,
        ts: Timestamp,
        after: Option<NodeId>,
    ) -> Result<crate::stream::NodeStream> {
        if self.lineage_current(ts) && !self.lineage_wedged() {
            crate::stream::NodeStream::lineage(Arc::clone(&self.lineage), ts, after)
        } else {
            Ok(crate::stream::NodeStream::snapshot(
                self.timestore.snapshot_at(ts)?,
                ts,
                after,
            ))
        }
    }

    /// Whether `id` was alive at `ts` — cursor-anchor revalidation: a
    /// resumed cursor's last-emitted node must still resolve at its pinned
    /// snapshot, otherwise resuming could skip or duplicate rows.
    pub fn node_alive_at(&self, id: NodeId, ts: Timestamp) -> Result<bool> {
        if self.lineage_current(ts) && !self.lineage_wedged() {
            Ok(self.lineage.node_at(id, ts)?.is_some())
        } else {
            Ok(self.timestore.snapshot_at(ts)?.node(id).is_some())
        }
    }

    /// `getGraph(start, end, step)` — a snapshot series.
    pub fn get_graphs(
        &self,
        start: Timestamp,
        end: Timestamp,
        step: u64,
    ) -> Result<Vec<(Timestamp, Arc<Graph>)>> {
        self.timestore.graphs(start, end, step)
    }

    /// `getWindow(start, end)` — the union graph of the window.
    pub fn get_window(&self, start: Timestamp, end: Timestamp) -> Result<Graph> {
        self.timestore.window(start, end)
    }

    /// `getTemporalGraph(start, end)` — the temporal LPG over the window.
    pub fn get_temporal_graph(&self, start: Timestamp, end: Timestamp) -> Result<TemporalGraph> {
        self.timestore.temporal_graph(start, end)
    }

    // ---------------------------------------------------- bitemporal

    /// Bitemporal node lookup (Fig. 1c): system-time first, then the
    /// application-time filter over the retrieved versions (Sec. 4.5).
    pub fn get_node_bitemporal(
        &self,
        id: NodeId,
        system: TimeRange,
        application: TimeRange,
    ) -> Result<Vec<Version<Node>>> {
        let w = system.to_half_open();
        let versions = self.get_node(id, w.start, w.end)?;
        Ok(bitemporal::filter_versions(
            versions,
            application,
            self.app_keys,
        ))
    }

    /// Flushes all storage to disk. When commits are outstanding beyond
    /// the durable log prefix (`sync_on_commit = false` ingest, or the
    /// replication shipper forcing unshipped backlog onto disk), this is
    /// a *forced* group flush — counted so the fsync-amortization story
    /// is observable end to end.
    pub fn sync(&self) -> Result<()> {
        if self.timestore.log().end_offset() > self.timestore.durable_log_end() {
            self.forced_flushes.inc();
        }
        self.timestore.sync()?;
        self.lineage.sync()?;
        Ok(())
    }
}

/// Builds a single node's version chain over `[start, end)` from its base
/// state plus its filtered updates (the per-entity TimeStore fallback).
fn entity_versions<'a>(
    start: Timestamp,
    end: Timestamp,
    state: &mut Option<Node>,
    updates: impl Iterator<Item = &'a TimestampedUpdate>,
) -> Result<Vec<Version<Node>>> {
    let mut versions = Vec::new();
    let mut open_since = start;
    for u in updates {
        if let Some(node) = state.take() {
            if u.ts > open_since {
                versions.push(Version::new(open_since, u.ts, node.clone()));
            }
            *state = Some(node);
        }
        match &u.op {
            Update::AddNode { id, labels, props } => {
                *state = Some(Node::new(*id, labels.clone(), props.clone()));
            }
            Update::DeleteNode { .. } => *state = None,
            op => {
                if let (Some(node), Some(delta)) =
                    (state.as_mut(), lpg::EntityDelta::from_update(op))
                {
                    delta.apply_to_node(node);
                }
            }
        }
        open_since = u.ts;
    }
    if let Some(node) = state.take() {
        if end > open_since {
            versions.push(Version::new(open_since, end, node));
        }
    }
    Ok(versions)
}

/// The relationship analogue of [`entity_versions`].
fn rel_versions<'a>(
    start: Timestamp,
    end: Timestamp,
    state: &mut Option<Relationship>,
    updates: impl Iterator<Item = &'a TimestampedUpdate>,
) -> Result<Vec<Version<Relationship>>> {
    let mut versions = Vec::new();
    let mut open_since = start;
    for u in updates {
        if let Some(rel) = state.take() {
            if u.ts > open_since {
                versions.push(Version::new(open_since, u.ts, rel.clone()));
            }
            *state = Some(rel);
        }
        match &u.op {
            Update::AddRel {
                id,
                src,
                tgt,
                label,
                props,
            } => {
                *state = Some(Relationship::new(*id, *src, *tgt, *label, props.clone()));
            }
            Update::DeleteRel { .. } => *state = None,
            op => {
                if let (Some(rel), Some(delta)) =
                    (state.as_mut(), lpg::EntityDelta::from_update(op))
                {
                    delta.apply_to_rel(rel);
                }
            }
        }
        open_since = u.ts;
    }
    if let Some(rel) = state.take() {
        if end > open_since {
            versions.push(Version::new(open_since, end, rel));
        }
    }
    Ok(versions)
}
