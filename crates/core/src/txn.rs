//! Write transactions.
//!
//! A [`WriteTxn`] buffers updates and validates every LPG constraint of
//! Sec. 3 against the latest committed graph *plus* the transaction's own
//! pending changes, so a committed transaction always yields a consistent
//! graph — the guarantee the event listener hands to Aion ("committed
//! transactions always result in a consistent labeled property graph",
//! Sec. 5.1).

use lpg::{Graph, GraphError, NodeId, Props, RelId, Result, StrId, Timestamp, Update};
use lpg::{PropertyValue, TS_MAX};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Application-time property keys (Sec. 4.5). Interned once per database.
#[derive(Clone, Copy, Debug)]
pub struct AppTimeKeys {
    /// `_app_start` — application (event) start time.
    pub start: StrId,
    /// `_app_end` — application (event) end time.
    pub end: StrId,
}

/// The after-commit event delivered to listeners (stage 1 of Fig. 4).
#[derive(Clone, Debug)]
pub struct CommitEvent {
    /// Commit (system) timestamp assigned to the transaction.
    pub ts: Timestamp,
    /// The validated updates, in application order.
    pub updates: Arc<Vec<Update>>,
}

/// A buffered write transaction.
pub struct WriteTxn<'a> {
    base: &'a Graph,
    app_keys: AppTimeKeys,
    updates: Vec<Update>,
    nodes_added: HashSet<NodeId>,
    nodes_deleted: HashSet<NodeId>,
    rels_added: HashMap<RelId, (NodeId, NodeId)>,
    rels_deleted: HashSet<RelId>,
    /// Degree delta per node caused by this transaction.
    degree_delta: HashMap<NodeId, i64>,
}

impl<'a> WriteTxn<'a> {
    /// Starts a transaction over the latest committed graph.
    pub fn new(base: &'a Graph, app_keys: AppTimeKeys) -> WriteTxn<'a> {
        WriteTxn {
            base,
            app_keys,
            updates: Vec::new(),
            nodes_added: HashSet::new(),
            nodes_deleted: HashSet::new(),
            rels_added: HashMap::new(),
            rels_deleted: HashSet::new(),
            degree_delta: HashMap::new(),
        }
    }

    fn node_exists(&self, id: NodeId) -> bool {
        if self.nodes_added.contains(&id) {
            return true;
        }
        if self.nodes_deleted.contains(&id) {
            return false;
        }
        self.base.has_node(id)
    }

    fn rel_exists(&self, id: RelId) -> bool {
        if self.rels_added.contains_key(&id) {
            return true;
        }
        if self.rels_deleted.contains(&id) {
            return false;
        }
        self.base.has_rel(id)
    }

    fn degree(&self, id: NodeId) -> i64 {
        let base = self.base.degree(id, lpg::Direction::Both) as i64;
        base + self.degree_delta.get(&id).copied().unwrap_or(0)
    }

    fn endpoints(&self, id: RelId) -> Option<(NodeId, NodeId)> {
        if let Some(&(s, t)) = self.rels_added.get(&id) {
            return Some((s, t));
        }
        self.base.rel(id).map(|r| (r.src, r.tgt))
    }

    /// Validates the application-time constraint: start < end whenever both
    /// are present in a property bag (Sec. 4.5).
    fn check_app_time(&self, props: &Props) -> Result<()> {
        let get = |key: StrId| {
            props
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.as_int().unwrap_or(0))
        };
        if let (Some(s), Some(e)) = (get(self.app_keys.start), get(self.app_keys.end)) {
            if s >= e {
                return Err(GraphError::InvalidApplicationTime);
            }
        }
        Ok(())
    }

    /// Creates a node.
    pub fn add_node(&mut self, id: NodeId, labels: Vec<StrId>, props: Props) -> Result<()> {
        if self.node_exists(id) {
            return Err(GraphError::NodeExists(id));
        }
        self.check_app_time(&props)?;
        self.nodes_added.insert(id);
        self.nodes_deleted.remove(&id);
        self.updates.push(Update::AddNode { id, labels, props });
        Ok(())
    }

    /// Deletes a node (which must have no remaining relationships).
    pub fn delete_node(&mut self, id: NodeId) -> Result<()> {
        if !self.node_exists(id) {
            return Err(GraphError::NodeNotFound(id));
        }
        if self.degree(id) > 0 {
            return Err(GraphError::NodeHasRelationships(id));
        }
        if !self.nodes_added.remove(&id) {
            self.nodes_deleted.insert(id);
        }
        self.updates.push(Update::DeleteNode { id });
        Ok(())
    }

    /// Creates a relationship between existing nodes.
    pub fn add_rel(
        &mut self,
        id: RelId,
        src: NodeId,
        tgt: NodeId,
        label: Option<StrId>,
        props: Props,
    ) -> Result<()> {
        if self.rel_exists(id) {
            return Err(GraphError::RelExists(id));
        }
        if !self.node_exists(src) {
            return Err(GraphError::EndpointMissing { rel: id, node: src });
        }
        if !self.node_exists(tgt) {
            return Err(GraphError::EndpointMissing { rel: id, node: tgt });
        }
        self.check_app_time(&props)?;
        self.rels_added.insert(id, (src, tgt));
        self.rels_deleted.remove(&id);
        *self.degree_delta.entry(src).or_insert(0) += 1;
        *self.degree_delta.entry(tgt).or_insert(0) += 1;
        self.updates.push(Update::AddRel {
            id,
            src,
            tgt,
            label,
            props,
        });
        Ok(())
    }

    /// Deletes a relationship.
    pub fn delete_rel(&mut self, id: RelId) -> Result<()> {
        if !self.rel_exists(id) {
            return Err(GraphError::RelNotFound(id));
        }
        let Some((src, tgt)) = self.endpoints(id) else {
            return Err(GraphError::RelNotFound(id));
        };
        if self.rels_added.remove(&id).is_none() {
            self.rels_deleted.insert(id);
        }
        *self.degree_delta.entry(src).or_insert(0) -= 1;
        *self.degree_delta.entry(tgt).or_insert(0) -= 1;
        self.updates.push(Update::DeleteRel { id });
        Ok(())
    }

    /// Sets a node property.
    pub fn set_node_prop(&mut self, id: NodeId, key: StrId, value: PropertyValue) -> Result<()> {
        if !self.node_exists(id) {
            return Err(GraphError::NodeNotFound(id));
        }
        self.updates.push(Update::SetNodeProp { id, key, value });
        Ok(())
    }

    /// Removes a node property.
    pub fn remove_node_prop(&mut self, id: NodeId, key: StrId) -> Result<()> {
        if !self.node_exists(id) {
            return Err(GraphError::NodeNotFound(id));
        }
        self.updates.push(Update::RemoveNodeProp { id, key });
        Ok(())
    }

    /// Adds a label to a node.
    pub fn add_label(&mut self, id: NodeId, label: StrId) -> Result<()> {
        if !self.node_exists(id) {
            return Err(GraphError::NodeNotFound(id));
        }
        self.updates.push(Update::AddLabel { id, label });
        Ok(())
    }

    /// Removes a label from a node.
    pub fn remove_label(&mut self, id: NodeId, label: StrId) -> Result<()> {
        if !self.node_exists(id) {
            return Err(GraphError::NodeNotFound(id));
        }
        self.updates.push(Update::RemoveLabel { id, label });
        Ok(())
    }

    /// Sets a relationship property.
    pub fn set_rel_prop(&mut self, id: RelId, key: StrId, value: PropertyValue) -> Result<()> {
        if !self.rel_exists(id) {
            return Err(GraphError::RelNotFound(id));
        }
        self.updates.push(Update::SetRelProp { id, key, value });
        Ok(())
    }

    /// Removes a relationship property.
    pub fn remove_rel_prop(&mut self, id: RelId, key: StrId) -> Result<()> {
        if !self.rel_exists(id) {
            return Err(GraphError::RelNotFound(id));
        }
        self.updates.push(Update::RemoveRelProp { id, key });
        Ok(())
    }

    /// Sets an entity's application-time validity `[start, end)`
    /// (Sec. 4.5). `end = TS_MAX` means "until further notice".
    pub fn set_node_app_time(&mut self, id: NodeId, start: u64, end: u64) -> Result<()> {
        if start >= end {
            return Err(GraphError::InvalidApplicationTime);
        }
        self.set_node_prop(id, self.app_keys.start, PropertyValue::Int(start as i64))?;
        if end != TS_MAX {
            self.set_node_prop(id, self.app_keys.end, PropertyValue::Int(end as i64))?;
        }
        Ok(())
    }

    /// Number of buffered updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` when nothing was changed.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Finishes validation and hands the update batch to the committer.
    pub(crate) fn into_updates(self) -> Vec<Update> {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> AppTimeKeys {
        AppTimeKeys {
            start: StrId::new(1000),
            end: StrId::new(1001),
        }
    }

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }
    fn rid(i: u64) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn txn_validates_against_base_and_overlay() {
        let mut base = Graph::new();
        base.apply(&Update::AddNode {
            id: nid(1),
            labels: vec![],
            props: vec![],
        })
        .unwrap();
        let mut txn = WriteTxn::new(&base, keys());
        // Existing node cannot be re-added.
        assert!(matches!(
            txn.add_node(nid(1), vec![], vec![]),
            Err(GraphError::NodeExists(_))
        ));
        // New node + rel to base node works.
        txn.add_node(nid(2), vec![], vec![]).unwrap();
        txn.add_rel(rid(1), nid(1), nid(2), None, vec![]).unwrap();
        // Cannot delete node 2 while the pending rel exists.
        assert!(matches!(
            txn.delete_node(nid(2)),
            Err(GraphError::NodeHasRelationships(_))
        ));
        txn.delete_rel(rid(1)).unwrap();
        txn.delete_node(nid(2)).unwrap();
        assert_eq!(txn.len(), 4);
    }

    #[test]
    fn rel_to_missing_endpoint_rejected() {
        let base = Graph::new();
        let mut txn = WriteTxn::new(&base, keys());
        assert!(matches!(
            txn.add_rel(rid(1), nid(1), nid(2), None, vec![]),
            Err(GraphError::EndpointMissing { .. })
        ));
    }

    #[test]
    fn delete_then_readd_in_one_txn() {
        let mut base = Graph::new();
        base.apply(&Update::AddNode {
            id: nid(1),
            labels: vec![],
            props: vec![],
        })
        .unwrap();
        let mut txn = WriteTxn::new(&base, keys());
        txn.delete_node(nid(1)).unwrap();
        txn.add_node(nid(1), vec![StrId::new(1)], vec![]).unwrap();
        assert_eq!(txn.len(), 2);
        // Replaying the batch on the base graph must succeed.
        let mut check = base.clone();
        check.apply_all(txn.into_updates().iter()).unwrap();
        assert!(check.node(nid(1)).unwrap().has_label(StrId::new(1)));
    }

    #[test]
    fn app_time_constraint_checked() {
        let base = Graph::new();
        let mut txn = WriteTxn::new(&base, keys());
        let bad = vec![
            (keys().start, PropertyValue::Int(10)),
            (keys().end, PropertyValue::Int(5)),
        ];
        assert_eq!(
            txn.add_node(nid(1), vec![], bad),
            Err(GraphError::InvalidApplicationTime)
        );
        txn.add_node(nid(1), vec![], vec![]).unwrap();
        assert_eq!(
            txn.set_node_app_time(nid(1), 9, 9),
            Err(GraphError::InvalidApplicationTime)
        );
        txn.set_node_app_time(nid(1), 5, 10).unwrap();
        assert_eq!(txn.len(), 3);
    }

    #[test]
    fn property_ops_require_entity() {
        let base = Graph::new();
        let mut txn = WriteTxn::new(&base, keys());
        assert!(txn
            .set_node_prop(nid(1), StrId::new(0), PropertyValue::Int(1))
            .is_err());
        assert!(txn
            .set_rel_prop(rid(1), StrId::new(0), PropertyValue::Int(1))
            .is_err());
        assert!(txn.add_label(nid(1), StrId::new(0)).is_err());
        txn.add_node(nid(1), vec![], vec![]).unwrap();
        txn.set_node_prop(nid(1), StrId::new(0), PropertyValue::Int(1))
            .unwrap();
    }
}
