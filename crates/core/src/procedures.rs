//! Temporal procedures (Sec. 5.1): the callable analytics layer that wraps
//! the Table 1 API — graph projections plus incremental algorithms over
//! consecutive snapshots (Sec. 6.6), reusing intermediate results via
//! `getDiff` between iterations.

use crate::db::Aion;
use algo::{
    aggregate::{avg_rel_property, IncrementalAvg},
    bfs::{bfs_levels, IncrementalBfs},
    pagerank::{pagerank, IncrementalPageRank, PageRankConfig},
};
use dyngraph::{Csr, DynGraph};
use lpg::{Direction, NodeId, Result, StrId, Timestamp};
use std::collections::HashMap;

/// How a snapshot-series procedure executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Recompute from scratch per snapshot (the classic-Neo4j baseline of
    /// Figs. 12/14).
    Classic,
    /// Reuse the previous snapshot's state and apply `getDiff` between
    /// iterations.
    Incremental,
}

/// Per-series results: one entry per materialized snapshot.
#[derive(Clone, Debug)]
pub struct SeriesResult<T> {
    /// `(timestamp, result)` pairs.
    pub points: Vec<(Timestamp, T)>,
    /// Total inner work units (iterations for PageRank, touched nodes for
    /// BFS, scanned rels for AVG) — the effort the speedup comes from.
    pub work: u64,
}

impl Aion {
    /// Materializes the snapshot time points `start, start+step, … < end`.
    fn series_times(start: Timestamp, end: Timestamp, step: u64) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            out.push(t);
            match t.checked_add(step) {
                Some(n) => t = n,
                None => break,
            }
        }
        out
    }

    /// Builds the dynamic in-memory graph at `t` (a "graph projection" onto
    /// the Sec. 5.2 representation).
    pub fn project_at(&self, t: Timestamp) -> Result<DynGraph> {
        Ok(DynGraph::from_graph(self.get_graph_at(t)?.as_ref()))
    }

    /// Builds a static CSR projection at `t` (the GDS-style path).
    pub fn project_csr_at(&self, t: Timestamp, dir: Direction) -> Result<Csr> {
        Ok(Csr::project(&self.project_at(t)?, dir, None))
    }

    /// `AVG(rel.prop)` over a snapshot series.
    pub fn proc_avg_series(
        &self,
        key: StrId,
        start: Timestamp,
        end: Timestamp,
        step: u64,
        mode: ExecMode,
    ) -> Result<SeriesResult<Option<f64>>> {
        let times = Self::series_times(start, end, step);
        let mut points = Vec::with_capacity(times.len());
        let mut work = 0u64;
        match mode {
            ExecMode::Classic => {
                for &t in &times {
                    let g = self.project_at(t)?;
                    work += g.rel_count() as u64; // full scan each time
                    points.push((t, avg_rel_property(&g, key)));
                }
            }
            ExecMode::Incremental => {
                let first = times.first().copied().unwrap_or(start);
                let g = self.project_at(first)?;
                work += g.rel_count() as u64;
                let mut agg = IncrementalAvg::from_graph(&g, key);
                points.push((first, agg.value()));
                for pair in times.windows(2) {
                    let diff = self.get_diff(pair[0] + 1, pair[1] + 1)?;
                    work += diff.len() as u64;
                    agg.apply_diff(&diff);
                    points.push((pair[1], agg.value()));
                }
            }
        }
        Ok(SeriesResult { points, work })
    }

    /// BFS levels from `source` over a snapshot series; the result per
    /// snapshot is the number of reachable nodes.
    pub fn proc_bfs_series(
        &self,
        source: NodeId,
        start: Timestamp,
        end: Timestamp,
        step: u64,
        mode: ExecMode,
    ) -> Result<SeriesResult<usize>> {
        let times = Self::series_times(start, end, step);
        let mut points = Vec::with_capacity(times.len());
        let mut work = 0u64;
        match mode {
            ExecMode::Classic => {
                for &t in &times {
                    let g = self.project_at(t)?;
                    let levels = bfs_levels(&g, source);
                    work += g.node_count() as u64;
                    points.push((t, levels.len()));
                }
            }
            ExecMode::Incremental => {
                let first = times.first().copied().unwrap_or(start);
                let mut g = self.project_at(first)?;
                let mut engine = IncrementalBfs::new(&g, source);
                work += g.node_count() as u64;
                points.push((first, engine.levels().len()));
                for pair in times.windows(2) {
                    let diff = self.get_diff(pair[0] + 1, pair[1] + 1)?;
                    for u in &diff {
                        let _ = g.apply(&u.op);
                    }
                    engine.apply_diff(&g, &diff);
                    work += diff.len() as u64 + engine.touched as u64;
                    points.push((pair[1], engine.levels().len()));
                }
            }
        }
        Ok(SeriesResult { points, work })
    }

    /// PageRank over a snapshot series; the result per snapshot is the
    /// rank vector (sparse ids).
    pub fn proc_pagerank_series(
        &self,
        config: PageRankConfig,
        start: Timestamp,
        end: Timestamp,
        step: u64,
        mode: ExecMode,
    ) -> Result<SeriesResult<HashMap<NodeId, f64>>> {
        let times = Self::series_times(start, end, step);
        let mut points = Vec::with_capacity(times.len());
        let mut work = 0u64;
        match mode {
            ExecMode::Classic => {
                for &t in &times {
                    let g = self.project_at(t)?;
                    let csr = Csr::project(&g, Direction::Outgoing, None);
                    let result = pagerank(&csr, config);
                    work += result.iterations as u64;
                    let mut ranks = HashMap::new();
                    for d in 0..csr.node_slots() as u32 {
                        if !csr.live[d as usize] {
                            continue;
                        }
                        if let Some(id) = g.sparse(d) {
                            ranks.insert(id, result.ranks[d as usize]);
                        }
                    }
                    points.push((t, ranks));
                }
            }
            ExecMode::Incremental => {
                let first = times.first().copied().unwrap_or(start);
                let mut g = self.project_at(first)?;
                let mut engine = IncrementalPageRank::new(config);
                let mut prev_iters = 0;
                let ranks = engine.run(&g);
                work += (engine.total_iterations - prev_iters) as u64;
                prev_iters = engine.total_iterations;
                points.push((first, ranks));
                for pair in times.windows(2) {
                    let diff = self.get_diff(pair[0] + 1, pair[1] + 1)?;
                    for u in &diff {
                        let _ = g.apply(&u.op);
                    }
                    let ranks = engine.run(&g);
                    work += (engine.total_iterations - prev_iters) as u64;
                    prev_iters = engine.total_iterations;
                    points.push((pair[1], ranks));
                }
            }
        }
        Ok(SeriesResult { points, work })
    }
}
