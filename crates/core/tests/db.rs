//! End-to-end Aion tests: transactional writes, Table 1 API, planner
//! routing, async-cascade fallback, bitemporal queries, recovery, and the
//! incremental procedures.

use aion::procedures::ExecMode;
use aion::{Aion, AionConfig, StoreChoice};
use algo::pagerank::PageRankConfig;
use lpg::{Direction, GraphError, NodeId, PropertyValue, RelId, TimeRange};
use tempfile::tempdir;

fn open(dir: &std::path::Path) -> Aion {
    Aion::open(AionConfig::new(dir)).unwrap()
}

fn nid(i: u64) -> NodeId {
    NodeId::new(i)
}
fn rid(i: u64) -> RelId {
    RelId::new(i)
}

/// Creates a small social graph: n nodes in a ring plus chords.
fn seed(db: &Aion, n: u64) -> Vec<u64> {
    let person = db.intern("Person");
    let knows = db.intern("KNOWS");
    let weight = db.intern("weight");
    let mut commit_ts = Vec::new();
    for i in 0..n {
        let ts = db
            .write(|txn| txn.add_node(nid(i), vec![person], vec![]))
            .unwrap();
        commit_ts.push(ts);
    }
    for i in 0..n {
        let ts = db
            .write(|txn| {
                txn.add_rel(
                    rid(i),
                    nid(i),
                    nid((i + 1) % n),
                    Some(knows),
                    vec![(weight, PropertyValue::Float(i as f64))],
                )
            })
            .unwrap();
        commit_ts.push(ts);
    }
    commit_ts
}

#[test]
fn transactional_writes_and_reads() {
    let dir = tempdir().unwrap();
    let db = open(dir.path());
    let ts = seed(&db, 10);
    let last = *ts.last().unwrap();
    db.lineage_barrier(last);

    // Latest graph reflects everything.
    let g = db.latest_graph();
    assert_eq!(g.node_count(), 10);
    assert_eq!(g.rel_count(), 10);

    // Point history through the API.
    let hist = db.get_node(nid(3), 0, last + 1).unwrap();
    assert_eq!(hist.len(), 1);
    assert_eq!(hist[0].valid.start, ts[3]);

    // Relationship history.
    let rels = db
        .get_relationships(nid(3), Direction::Both, 0, last + 1)
        .unwrap();
    assert_eq!(rels.len(), 2, "ring: one in, one out");

    // Time travel: before the rel insertions started.
    let g_early = db.get_graph_at(ts[9]).unwrap();
    assert_eq!(g_early.node_count(), 10);
    assert_eq!(g_early.rel_count(), 0);
}

#[test]
fn failed_txn_commits_nothing() {
    let dir = tempdir().unwrap();
    let db = open(dir.path());
    seed(&db, 3);
    let before = db.latest_ts();
    let err = db.write(|txn| {
        txn.add_node(nid(100), vec![], vec![])?;
        txn.add_rel(rid(100), nid(100), nid(999), None, vec![]) // missing tgt
    });
    assert!(matches!(err, Err(GraphError::EndpointMissing { .. })));
    assert_eq!(db.latest_ts(), before, "nothing committed");
    assert!(!db.latest_graph().has_node(nid(100)));
}

#[test]
fn listener_sees_after_commit_events() {
    let dir = tempdir().unwrap();
    let db = open(dir.path());
    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    db.register_listener(move |e| seen2.lock().unwrap().push((e.ts, e.updates.len())));
    seed(&db, 3);
    let events = seen.lock().unwrap();
    assert_eq!(events.len(), 6);
    assert!(events.windows(2).all(|w| w[0].0 < w[1].0), "ordered ts");
}

#[test]
fn planner_routes_small_and_large_expansions() {
    let dir = tempdir().unwrap();
    let db = open(dir.path());
    let ts = seed(&db, 50);
    let last = *ts.last().unwrap();
    db.lineage_barrier(last);
    let stats = db.statistics();
    // Ring of degree 1: 1 hop is tiny, 50 hops covers everything.
    assert_eq!(
        db.planner().choose(
            stats,
            aion::planner::AccessPattern::Expand { seeds: 1, hops: 1 }
        ),
        StoreChoice::Lineage
    );
    assert_eq!(
        db.planner()
            .choose(stats, aion::planner::AccessPattern::Global),
        StoreChoice::Time
    );
    // Both expansion paths agree on results.
    let via_lineage = db
        .lineagestore()
        .expand(nid(0), Direction::Outgoing, 3, last)
        .unwrap();
    let via_snapshot = db
        .expand_via_snapshot(nid(0), Direction::Outgoing, 3, last)
        .unwrap();
    assert_eq!(via_lineage.len(), via_snapshot.len());
    let hits = db.expand(nid(0), Direction::Outgoing, 3, last).unwrap();
    assert_eq!(hits.len(), 3);
}

#[test]
fn lineage_lag_falls_back_to_timestore() {
    let dir = tempdir().unwrap();
    // Synchronous-lineage instance to create a baseline answer.
    let mut cfg = AionConfig::new(dir.path());
    cfg.sync_lineage = true;
    let db = Aion::open(cfg).unwrap();
    let ts = seed(&db, 8);
    let last = *ts.last().unwrap();
    // Sync mode: lineage always current; both paths answer identically.
    let a = db.get_node(nid(2), 0, last + 1).unwrap();
    let tg = db.get_temporal_graph(0, last + 1).unwrap();
    let b = tg.nodes.get(&nid(2)).cloned().unwrap_or_default();
    assert_eq!(a.len(), b.len());
    assert_eq!(a[0].data, b[0].data);
}

#[test]
fn diff_window_temporal_graph() {
    let dir = tempdir().unwrap();
    let db = open(dir.path());
    let ts = seed(&db, 6);
    let first_rel_ts = ts[6];
    let last = *ts.last().unwrap();
    let diff = db.get_diff(first_rel_ts, last + 1).unwrap();
    assert_eq!(diff.len(), 6, "six relationship inserts");
    let w = db.get_window(first_rel_ts, last + 1).unwrap();
    assert_eq!(w.node_count(), 6);
    assert_eq!(w.rel_count(), 6);
    let tg = db.get_temporal_graph(0, last + 1).unwrap();
    assert_eq!(tg.nodes.len(), 6);
    assert_eq!(tg.rels.len(), 6);
    let series = db.get_graphs(1, last + 1, (last / 3).max(1)).unwrap();
    assert!(series.len() >= 2);
    for (t, g) in &series {
        assert!(g.same_as(&db.get_graph_at(*t).unwrap()));
    }
}

#[test]
fn bitemporal_filtering() {
    let dir = tempdir().unwrap();
    let db = open(dir.path());
    let keys = db.app_time_keys();
    db.write(|txn| {
        txn.add_node(
            nid(1),
            vec![],
            vec![
                (keys.start, PropertyValue::Int(100)),
                (keys.end, PropertyValue::Int(200)),
            ],
        )
    })
    .unwrap();
    db.write(|txn| txn.add_node(nid(2), vec![], vec![]))
        .unwrap();
    let last = db.latest_ts();
    db.lineage_barrier(last);
    // Node 1 is visible only within app time [100, 200).
    let sys = TimeRange::AsOf(last);
    let hit = db
        .get_node_bitemporal(nid(1), sys, TimeRange::ContainedIn(150, 160))
        .unwrap();
    assert_eq!(hit.len(), 1);
    let miss = db
        .get_node_bitemporal(nid(1), sys, TimeRange::ContainedIn(300, 400))
        .unwrap();
    assert!(miss.is_empty());
    // Node 2 has no app time: falls back to system time (passes).
    let fallback = db
        .get_node_bitemporal(nid(2), sys, TimeRange::ContainedIn(300, 400))
        .unwrap();
    assert_eq!(fallback.len(), 1);
    // Invalid app interval rejected at write time.
    let err = db.write(|txn| {
        txn.add_node(
            nid(3),
            vec![],
            vec![
                (keys.start, PropertyValue::Int(9)),
                (keys.end, PropertyValue::Int(3)),
            ],
        )
    });
    assert_eq!(err, Err(GraphError::InvalidApplicationTime));
}

#[test]
fn recovery_reopens_with_lineage_catchup() {
    let dir = tempdir().unwrap();
    let last;
    {
        let db = open(dir.path());
        let ts = seed(&db, 12);
        last = *ts.last().unwrap();
        db.lineage_barrier(last);
        db.sync().unwrap();
    }
    // Wipe the LineageStore entirely: recovery must rebuild it from the log.
    vfs::VfsRef::std()
        .remove_file(&dir.path().join("lineage.db"))
        .unwrap();
    let db = open(dir.path());
    assert_eq!(db.latest_ts(), last);
    let hist = db.get_node(nid(5), 0, last + 1).unwrap();
    assert_eq!(hist.len(), 1);
    let hits = db
        .lineagestore()
        .expand(nid(0), Direction::Outgoing, 2, last)
        .unwrap();
    assert_eq!(hits.len(), 2);
    // Writes continue with fresh timestamps.
    let ts2 = db
        .write(|txn| txn.add_node(nid(1000), vec![], vec![]))
        .unwrap();
    assert!(ts2 > last);
}

#[test]
fn incremental_procedures_match_classic() {
    let dir = tempdir().unwrap();
    let db = open(dir.path());
    let weight = db.intern("weight");
    // Paper protocol (Sec. 6.6): load half the relationships, then step
    // through the remaining increments.
    let ts = seed(&db, 60);
    let last = *ts.last().unwrap();
    db.lineage_barrier(last);
    let half = ts[60 + 30]; // 60 node commits, then 30 of 60 rel commits
    let step = ((last - half) / 8).max(1);

    // AVG.
    let classic = db
        .proc_avg_series(weight, half, last + 1, step, ExecMode::Classic)
        .unwrap();
    let incr = db
        .proc_avg_series(weight, half, last + 1, step, ExecMode::Incremental)
        .unwrap();
    assert_eq!(classic.points.len(), incr.points.len());
    for ((t1, a), (t2, b)) in classic.points.iter().zip(incr.points.iter()) {
        assert_eq!(t1, t2);
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            other => panic!("mismatch at {t1}: {other:?}"),
        }
    }
    assert!(incr.work < classic.work, "incremental does less work");

    // BFS reachable counts.
    let classic = db
        .proc_bfs_series(nid(0), half, last + 1, step, ExecMode::Classic)
        .unwrap();
    let incr = db
        .proc_bfs_series(nid(0), half, last + 1, step, ExecMode::Incremental)
        .unwrap();
    assert_eq!(classic.points, incr.points);

    // PageRank.
    let cfg = PageRankConfig {
        damping: 0.85,
        max_iters: 200,
        epsilon: 1e-8,
    };
    let classic = db
        .proc_pagerank_series(cfg, half, last + 1, step, ExecMode::Classic)
        .unwrap();
    let incr = db
        .proc_pagerank_series(cfg, half, last + 1, step, ExecMode::Incremental)
        .unwrap();
    for ((t1, a), (_, b)) in classic.points.iter().zip(incr.points.iter()) {
        for (id, ra) in a {
            let rb = b[id];
            assert!(
                (ra - rb).abs() < 1e-6,
                "pagerank mismatch at {t1} node {id}"
            );
        }
    }
    assert!(
        incr.work <= classic.work,
        "incremental iterations ({}) should not exceed classic ({})",
        incr.work,
        classic.work
    );
}
