//! Registry of live connection workers.
//!
//! Extracted from `server.rs` and made generic over the connection
//! handle so the shutdown/registration races can be model-tested (see
//! `tests/loom_workerset.rs`) with fake handles instead of real sockets:
//! the accept loop registers, each worker deregisters itself on exit,
//! and shutdown force-closes and joins whatever remains after the drain
//! deadline.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A connection that can be closed out from under its worker thread to
/// unblock a read.
pub trait ConnHandle {
    /// Forces any blocked I/O on this connection to return; errors are
    /// irrelevant because the connection is being discarded.
    fn force_close(&self);
}

impl ConnHandle for TcpStream {
    fn force_close(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

struct WorkerEntry<C> {
    handle: Option<JoinHandle<()>>,
    conn: C,
    cancel: Arc<AtomicBool>,
}

/// Tracks one entry per live worker; see the module docs for the
/// register / finish / force-close lifecycle.
pub struct WorkerSet<C> {
    inner: Mutex<HashMap<u64, WorkerEntry<C>>>,
    next_id: AtomicU64,
    active_gauge: Arc<obs::Gauge>,
}

impl<C: ConnHandle> WorkerSet<C> {
    pub fn new(active_gauge: Arc<obs::Gauge>) -> WorkerSet<C> {
        WorkerSet {
            inner: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            active_gauge,
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, WorkerEntry<C>>> {
        // A worker that panicked mid-request poisons nothing of value
        // here: the map only tracks liveness, so recover and continue.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a connection before its worker thread exists; returns
    /// the worker id and its cancellation flag.
    pub fn register(&self, conn: C) -> (u64, Arc<AtomicBool>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = Arc::new(AtomicBool::new(false));
        let mut map = self.lock();
        map.insert(
            id,
            WorkerEntry {
                handle: None,
                conn,
                cancel: cancel.clone(),
            },
        );
        self.active_gauge.set(map.len() as i64);
        (id, cancel)
    }

    /// Attaches the spawned thread's handle; if the worker already
    /// finished (fast disconnect), the handle is dropped (detached while
    /// exiting).
    pub fn set_handle(&self, id: u64, handle: JoinHandle<()>) {
        if let Some(entry) = self.lock().get_mut(&id) {
            entry.handle = Some(handle);
        }
    }

    /// Called by a worker as its last action: removes it from the set.
    pub fn finish(&self, id: u64) {
        let mut map = self.lock();
        map.remove(&id);
        self.active_gauge.set(map.len() as i64);
    }

    /// Number of live workers.
    pub fn active(&self) -> usize {
        self.lock().len()
    }

    /// Cancels and closes every remaining connection, returning the
    /// thread handles to join plus how many were force-closed.
    pub fn force_close_all(&self) -> (Vec<JoinHandle<()>>, u64) {
        let entries: Vec<WorkerEntry<C>> = {
            let mut map = self.lock();
            let drained = map.drain().map(|(_, e)| e).collect();
            self.active_gauge.set(0);
            drained
        };
        let forced = entries.len() as u64;
        let mut handles = Vec::with_capacity(entries.len());
        for entry in entries {
            entry.cancel.store(true, Ordering::Release);
            entry.conn.force_close();
            if let Some(h) = entry.handle {
                handles.push(h);
            }
        }
        (handles, forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fake handle recording whether it was force-closed.
    struct FakeConn(Arc<AtomicBool>);

    impl ConnHandle for FakeConn {
        fn force_close(&self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn force_close_cancels_and_closes_survivors() {
        let ws: WorkerSet<FakeConn> = WorkerSet::new(obs::gauge("server.workers.test.active"));
        let closed_a = Arc::new(AtomicBool::new(false));
        let closed_b = Arc::new(AtomicBool::new(false));
        let (ida, cancel_a) = ws.register(FakeConn(closed_a.clone()));
        let (_idb, cancel_b) = ws.register(FakeConn(closed_b.clone()));
        assert_eq!(ws.active(), 2);
        // Worker A exits cleanly before shutdown.
        ws.finish(ida);
        let (handles, forced) = ws.force_close_all();
        assert!(handles.is_empty(), "no threads were attached");
        assert_eq!(forced, 1, "only B remained");
        assert!(!closed_a.load(Ordering::SeqCst));
        assert!(closed_b.load(Ordering::SeqCst));
        assert!(!cancel_a.load(Ordering::SeqCst));
        assert!(cancel_b.load(Ordering::SeqCst));
        assert_eq!(ws.active(), 0);
    }

    #[test]
    fn ids_are_unique_and_finish_is_idempotent() {
        let ws: WorkerSet<FakeConn> = WorkerSet::new(obs::gauge("server.workers.test.ids"));
        let (a, _) = ws.register(FakeConn(Arc::new(AtomicBool::new(false))));
        let (b, _) = ws.register(FakeConn(Arc::new(AtomicBool::new(false))));
        assert_ne!(a, b);
        ws.finish(a);
        ws.finish(a);
        assert_eq!(ws.active(), 1);
    }
}
