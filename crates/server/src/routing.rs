//! Replica-aware request routing: reads fan out to read replicas,
//! writes (and reads no replica can satisfy) go to the primary.
//!
//! Routing model (DESIGN.md §13):
//!
//! * **Classification once.** Each query is parsed exactly once per
//!   logical call ([`crate::client::query_is_read_only`]); the answer
//!   drives both the routing decision and the retry gate, and obs
//!   counters are bumped once per logical call — a replica-served read
//!   that fails over to the primary is **one** read, not two.
//! * **Read-your-writes.** The router remembers the highest watermark
//!   any response carried (every write ack includes the primary's
//!   watermark). Replica reads demand `min_watermark =` that session
//!   watermark; a replica still catching up refuses with a typed
//!   `StaleReplica` error and the router falls over — first to the next
//!   replica, finally to the primary, which is never stale.
//! * **Graceful degradation.** Transport errors mark a replica down for
//!   a cooldown window instead of removing it; with every replica down
//!   or stale, reads degrade to primary-only service.
//! * **Primary failover (DESIGN.md §17).** When the primary refuses a
//!   write with a typed rejection (`Fenced` — it was deposed — or
//!   `ReadOnlyReplica` — it rejoined as a replica) or cannot be reached
//!   at all, the router probes every node it knows with `Status`,
//!   re-points the write route at the **highest-epoch writable** node,
//!   and retries exactly when the failed attempt provably did not
//!   execute (typed rejections and connect failures). An ambiguous
//!   mid-request transport error still re-points the route for
//!   subsequent calls but surfaces the error — a write whose ack was
//!   lost is never replayed. The session watermark carries across
//!   failover, so read-your-writes holds on the new primary.

use crate::client::{query_is_read_only, Client, ClientConfig};
use query::{QueryResult, Value};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a replica sits out after a transport failure before the
/// router offers it reads again.
const REPLICA_COOLDOWN: Duration = Duration::from_secs(1);

/// Where a logical call was ultimately served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedBy {
    /// The primary answered.
    Primary,
    /// Read replica `index` (into the configured replica list) answered.
    Replica(usize),
}

/// A client that routes between one primary and N read replicas.
pub struct RoutedClient {
    primary_addr: SocketAddr,
    primary: Option<Client>,
    replicas: Vec<ReplicaSlot>,
    cfg: ClientConfig,
    /// Round-robin cursor over replicas.
    next_replica: usize,
    /// Highest watermark observed in any response: the read-your-writes
    /// floor for subsequent replica reads.
    session_watermark: u64,
    tel: RouteTelemetry,
}

struct ReplicaSlot {
    addr: SocketAddr,
    client: Option<Client>,
    down_until: Option<Instant>,
}

/// Obs counters for routing decisions, bumped once per logical call.
struct RouteTelemetry {
    replica_reads: Arc<obs::Counter>,
    primary_reads: Arc<obs::Counter>,
    primary_writes: Arc<obs::Counter>,
    failovers: Arc<obs::Counter>,
    stale_rejects: Arc<obs::Counter>,
}

impl RouteTelemetry {
    fn new() -> RouteTelemetry {
        RouteTelemetry {
            replica_reads: obs::counter("client.route.replica_reads"),
            primary_reads: obs::counter("client.route.primary_reads"),
            primary_writes: obs::counter("client.route.primary_writes"),
            failovers: obs::counter("client.route.failovers"),
            stale_rejects: obs::counter("client.route.stale_rejects"),
        }
    }
}

impl RoutedClient {
    /// Creates a router over `primary` and `replicas`. Connections are
    /// established lazily, so unreachable replicas cost nothing until a
    /// read tries them.
    pub fn new(primary: SocketAddr, replicas: Vec<SocketAddr>, cfg: ClientConfig) -> RoutedClient {
        RoutedClient {
            primary_addr: primary,
            primary: None,
            replicas: replicas
                .into_iter()
                .map(|addr| ReplicaSlot {
                    addr,
                    client: None,
                    down_until: None,
                })
                .collect(),
            cfg,
            next_replica: 0,
            session_watermark: 0,
            tel: RouteTelemetry::new(),
        }
    }

    /// The current read-your-writes floor: the highest watermark any
    /// response has carried in this session.
    pub fn session_watermark(&self) -> u64 {
        self.session_watermark
    }

    /// Executes `query`, routing by read/write classification, and
    /// reports which node served it (tests, diagnostics).
    pub fn run_traced(
        &mut self,
        query: &str,
        params: Vec<(String, Value)>,
    ) -> io::Result<(QueryResult, ServedBy)> {
        // Classified once; threaded through retries and failover so the
        // routing counters below fire once per *logical* call.
        let read_only = query_is_read_only(query);
        if !read_only {
            let result = self.run_on_primary(query, params);
            if result.is_ok() {
                self.tel.primary_writes.inc();
            }
            return result.map(|r| (r, ServedBy::Primary));
        }
        let mut failed_over = false;
        for _ in 0..self.replicas.len() {
            let idx = self.next_replica % self.replicas.len();
            self.next_replica = self.next_replica.wrapping_add(1);
            match self.try_replica(idx, query, &params) {
                ReplicaOutcome::Served(result, watermark) => {
                    self.observe_watermark(watermark);
                    self.tel.replica_reads.inc();
                    if failed_over {
                        self.tel.failovers.inc();
                    }
                    return Ok((result, ServedBy::Replica(idx)));
                }
                ReplicaOutcome::Stale => {
                    self.tel.stale_rejects.inc();
                    failed_over = true;
                }
                ReplicaOutcome::Unavailable => {
                    failed_over = true;
                }
                ReplicaOutcome::Fatal(e) => return Err(e),
            }
        }
        // Every replica was down or stale: the primary is authoritative
        // and by definition satisfies any watermark it ever issued.
        let result = self.run_on_primary(query, params)?;
        self.tel.primary_reads.inc();
        if failed_over {
            self.tel.failovers.inc();
        }
        Ok((result, ServedBy::Primary))
    }

    /// Executes `query`: reads fan to replicas (with read-your-writes),
    /// writes and unserveable reads go to the primary.
    pub fn run(&mut self, query: &str, params: Vec<(String, Value)>) -> io::Result<QueryResult> {
        self.run_traced(query, params).map(|(r, _)| r)
    }

    fn observe_watermark(&mut self, watermark: u64) {
        self.session_watermark = self.session_watermark.max(watermark);
    }

    fn run_on_primary(
        &mut self,
        query: &str,
        params: Vec<(String, Value)>,
    ) -> io::Result<QueryResult> {
        match self.primary_attempt(query, params.clone()) {
            Ok(result) => Ok(result),
            // The attempt provably did not execute (typed rejection or
            // the connection was never established): find the real
            // primary and replay the call there once.
            Err(PrimaryError::Retryable(e)) => {
                if self.failover_primary() {
                    self.primary_attempt(query, params)
                        .map_err(PrimaryError::into_io)
                } else {
                    Err(e)
                }
            }
            // Ambiguous (request sent, ack lost): heal the route for the
            // next call, but surface the error — replaying could apply
            // the write twice.
            Err(PrimaryError::Ambiguous(e)) => {
                let _ = self.failover_primary();
                Err(e)
            }
        }
    }

    /// One write/read attempt against the current primary route,
    /// classifying failures by whether the request could have executed.
    fn primary_attempt(
        &mut self,
        query: &str,
        params: Vec<(String, Value)>,
    ) -> Result<QueryResult, PrimaryError> {
        if self.primary.is_none() {
            // Nothing was sent yet: a connect failure is always safe to
            // retry elsewhere.
            self.primary = Some(
                Client::connect_with(self.primary_addr, self.cfg.clone())
                    .map_err(PrimaryError::Retryable)?,
            );
        }
        let client = match self.primary.as_mut() {
            Some(c) => c,
            // Unreachable: populated just above.
            None => {
                return Err(PrimaryError::Retryable(io::Error::other(
                    "primary connection unavailable",
                )))
            }
        };
        // min_watermark 0: the primary owns the log head and cannot be
        // stale relative to anything it acknowledged.
        match client.run_with_watermark(query, params, 0) {
            Ok((result, watermark)) => {
                self.observe_watermark(watermark);
                Ok(result)
            }
            // Typed rejections shed *before* execution: `Fenced` (the
            // node was deposed) and `ReadOnlyReplica` (it rejoined as a
            // replica). Neither applied the write.
            Err(e)
                if e.kind() == io::ErrorKind::NotConnected
                    || e.kind() == io::ErrorKind::PermissionDenied =>
            {
                self.primary = None;
                Err(PrimaryError::Retryable(e))
            }
            Err(e) => {
                self.primary = None;
                Err(PrimaryError::Ambiguous(e))
            }
        }
    }

    /// Probes every node this router knows (current primary + replicas)
    /// with `Status` and re-points the write route at the
    /// highest-epoch writable node. Returns whether a writable node was
    /// found. When the route actually moves, the deposed primary's
    /// address takes the promoted node's replica slot — after it rejoins
    /// (as a replica) it serves reads again.
    fn failover_primary(&mut self) -> bool {
        // Probes are advisory: keep them snappy, no retry loops.
        let mut probe_cfg = self.cfg.clone();
        probe_cfg.retries = 0;
        let mut best: Option<(u64, SocketAddr)> = None;
        let candidates: Vec<SocketAddr> = std::iter::once(self.primary_addr)
            .chain(self.replicas.iter().map(|s| s.addr))
            .collect();
        for addr in candidates {
            let Ok(mut client) = Client::connect_with(addr, probe_cfg.clone()) else {
                continue;
            };
            let Ok(status) = client.status() else {
                continue;
            };
            if status.writable() && best.is_none_or(|(epoch, _)| status.epoch > epoch) {
                best = Some((status.epoch, addr));
            }
        }
        match best {
            Some((_, addr)) if addr != self.primary_addr => {
                if let Some(slot) = self.replicas.iter_mut().find(|s| s.addr == addr) {
                    slot.addr = self.primary_addr;
                    slot.client = None;
                    slot.down_until = Some(Instant::now() + REPLICA_COOLDOWN);
                }
                self.primary_addr = addr;
                self.primary = None;
                self.tel.failovers.inc();
                true
            }
            // The configured primary itself is (again) writable — e.g. a
            // transient fence that resolved. Just reconnect.
            Some(_) => {
                self.primary = None;
                true
            }
            None => false,
        }
    }

    fn try_replica(
        &mut self,
        idx: usize,
        query: &str,
        params: &[(String, Value)],
    ) -> ReplicaOutcome {
        let min_watermark = self.session_watermark;
        let cfg = self.cfg.clone();
        let slot = &mut self.replicas[idx];
        if let Some(until) = slot.down_until {
            if Instant::now() < until {
                return ReplicaOutcome::Unavailable;
            }
            slot.down_until = None;
        }
        if slot.client.is_none() {
            match Client::connect_with(slot.addr, cfg) {
                Ok(c) => slot.client = Some(c),
                Err(_) => {
                    slot.down_until = Some(Instant::now() + REPLICA_COOLDOWN);
                    return ReplicaOutcome::Unavailable;
                }
            }
        }
        let client = match slot.client.as_mut() {
            Some(c) => c,
            // Unreachable: populated just above.
            None => return ReplicaOutcome::Unavailable,
        };
        match client.run_with_watermark(query, params.to_vec(), min_watermark) {
            Ok((result, watermark)) => ReplicaOutcome::Served(result, watermark),
            // StaleReplica surfaces as WouldBlock: the replica is healthy
            // but behind; don't cool it down, just go elsewhere this call.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => ReplicaOutcome::Stale,
            // A replica refusing reads as "read only" means the query
            // classifier and the server disagree; treat as fatal so the
            // mismatch is visible instead of silently retried forever.
            Err(e) if e.kind() == io::ErrorKind::PermissionDenied => ReplicaOutcome::Fatal(e),
            Err(_) => {
                slot.client = None;
                slot.down_until = Some(Instant::now() + REPLICA_COOLDOWN);
                ReplicaOutcome::Unavailable
            }
        }
    }
}

enum ReplicaOutcome {
    Served(QueryResult, u64),
    Stale,
    Unavailable,
    Fatal(io::Error),
}

/// A failed primary attempt, split by whether the request could have
/// executed on the server before the failure.
enum PrimaryError {
    /// Provably not executed (typed rejection, connect failure): safe to
    /// replay on another node.
    Retryable(io::Error),
    /// Sent but unacknowledged: may have executed; never replayed.
    Ambiguous(io::Error),
}

impl PrimaryError {
    fn into_io(self) -> io::Error {
        match self {
            PrimaryError::Retryable(e) | PrimaryError::Ambiguous(e) => e,
        }
    }
}
