//! Replica-aware request routing: reads fan out to read replicas,
//! writes (and reads no replica can satisfy) go to the primary.
//!
//! Routing model (DESIGN.md §13):
//!
//! * **Classification once.** Each query is parsed exactly once per
//!   logical call ([`crate::client::query_is_read_only`]); the answer
//!   drives both the routing decision and the retry gate, and obs
//!   counters are bumped once per logical call — a replica-served read
//!   that fails over to the primary is **one** read, not two.
//! * **Read-your-writes.** The router remembers the highest watermark
//!   any response carried (every write ack includes the primary's
//!   watermark). Replica reads demand `min_watermark =` that session
//!   watermark; a replica still catching up refuses with a typed
//!   `StaleReplica` error and the router falls over — first to the next
//!   replica, finally to the primary, which is never stale.
//! * **Graceful degradation.** Transport errors mark a replica down for
//!   a cooldown window instead of removing it; with every replica down
//!   or stale, reads degrade to primary-only service.

use crate::client::{query_is_read_only, Client, ClientConfig};
use query::{QueryResult, Value};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a replica sits out after a transport failure before the
/// router offers it reads again.
const REPLICA_COOLDOWN: Duration = Duration::from_secs(1);

/// Where a logical call was ultimately served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedBy {
    /// The primary answered.
    Primary,
    /// Read replica `index` (into the configured replica list) answered.
    Replica(usize),
}

/// A client that routes between one primary and N read replicas.
pub struct RoutedClient {
    primary_addr: SocketAddr,
    primary: Option<Client>,
    replicas: Vec<ReplicaSlot>,
    cfg: ClientConfig,
    /// Round-robin cursor over replicas.
    next_replica: usize,
    /// Highest watermark observed in any response: the read-your-writes
    /// floor for subsequent replica reads.
    session_watermark: u64,
    tel: RouteTelemetry,
}

struct ReplicaSlot {
    addr: SocketAddr,
    client: Option<Client>,
    down_until: Option<Instant>,
}

/// Obs counters for routing decisions, bumped once per logical call.
struct RouteTelemetry {
    replica_reads: Arc<obs::Counter>,
    primary_reads: Arc<obs::Counter>,
    primary_writes: Arc<obs::Counter>,
    failovers: Arc<obs::Counter>,
    stale_rejects: Arc<obs::Counter>,
}

impl RouteTelemetry {
    fn new() -> RouteTelemetry {
        RouteTelemetry {
            replica_reads: obs::counter("client.route.replica_reads"),
            primary_reads: obs::counter("client.route.primary_reads"),
            primary_writes: obs::counter("client.route.primary_writes"),
            failovers: obs::counter("client.route.failovers"),
            stale_rejects: obs::counter("client.route.stale_rejects"),
        }
    }
}

impl RoutedClient {
    /// Creates a router over `primary` and `replicas`. Connections are
    /// established lazily, so unreachable replicas cost nothing until a
    /// read tries them.
    pub fn new(primary: SocketAddr, replicas: Vec<SocketAddr>, cfg: ClientConfig) -> RoutedClient {
        RoutedClient {
            primary_addr: primary,
            primary: None,
            replicas: replicas
                .into_iter()
                .map(|addr| ReplicaSlot {
                    addr,
                    client: None,
                    down_until: None,
                })
                .collect(),
            cfg,
            next_replica: 0,
            session_watermark: 0,
            tel: RouteTelemetry::new(),
        }
    }

    /// The current read-your-writes floor: the highest watermark any
    /// response has carried in this session.
    pub fn session_watermark(&self) -> u64 {
        self.session_watermark
    }

    /// Executes `query`, routing by read/write classification, and
    /// reports which node served it (tests, diagnostics).
    pub fn run_traced(
        &mut self,
        query: &str,
        params: Vec<(String, Value)>,
    ) -> io::Result<(QueryResult, ServedBy)> {
        // Classified once; threaded through retries and failover so the
        // routing counters below fire once per *logical* call.
        let read_only = query_is_read_only(query);
        if !read_only {
            let result = self.run_on_primary(query, params);
            if result.is_ok() {
                self.tel.primary_writes.inc();
            }
            return result.map(|r| (r, ServedBy::Primary));
        }
        let mut failed_over = false;
        for _ in 0..self.replicas.len() {
            let idx = self.next_replica % self.replicas.len();
            self.next_replica = self.next_replica.wrapping_add(1);
            match self.try_replica(idx, query, &params) {
                ReplicaOutcome::Served(result, watermark) => {
                    self.observe_watermark(watermark);
                    self.tel.replica_reads.inc();
                    if failed_over {
                        self.tel.failovers.inc();
                    }
                    return Ok((result, ServedBy::Replica(idx)));
                }
                ReplicaOutcome::Stale => {
                    self.tel.stale_rejects.inc();
                    failed_over = true;
                }
                ReplicaOutcome::Unavailable => {
                    failed_over = true;
                }
                ReplicaOutcome::Fatal(e) => return Err(e),
            }
        }
        // Every replica was down or stale: the primary is authoritative
        // and by definition satisfies any watermark it ever issued.
        let result = self.run_on_primary(query, params)?;
        self.tel.primary_reads.inc();
        if failed_over {
            self.tel.failovers.inc();
        }
        Ok((result, ServedBy::Primary))
    }

    /// Executes `query`: reads fan to replicas (with read-your-writes),
    /// writes and unserveable reads go to the primary.
    pub fn run(&mut self, query: &str, params: Vec<(String, Value)>) -> io::Result<QueryResult> {
        self.run_traced(query, params).map(|(r, _)| r)
    }

    fn observe_watermark(&mut self, watermark: u64) {
        self.session_watermark = self.session_watermark.max(watermark);
    }

    fn run_on_primary(
        &mut self,
        query: &str,
        params: Vec<(String, Value)>,
    ) -> io::Result<QueryResult> {
        if self.primary.is_none() {
            self.primary = Some(Client::connect_with(self.primary_addr, self.cfg.clone())?);
        }
        let client = match self.primary.as_mut() {
            Some(c) => c,
            // Unreachable: populated just above.
            None => return Err(io::Error::other("primary connection unavailable")),
        };
        // min_watermark 0: the primary owns the log head and cannot be
        // stale relative to anything it acknowledged.
        match client.run_with_watermark(query, params, 0) {
            Ok((result, watermark)) => {
                self.observe_watermark(watermark);
                Ok(result)
            }
            Err(e) => {
                self.primary = None;
                Err(e)
            }
        }
    }

    fn try_replica(
        &mut self,
        idx: usize,
        query: &str,
        params: &[(String, Value)],
    ) -> ReplicaOutcome {
        let min_watermark = self.session_watermark;
        let cfg = self.cfg.clone();
        let slot = &mut self.replicas[idx];
        if let Some(until) = slot.down_until {
            if Instant::now() < until {
                return ReplicaOutcome::Unavailable;
            }
            slot.down_until = None;
        }
        if slot.client.is_none() {
            match Client::connect_with(slot.addr, cfg) {
                Ok(c) => slot.client = Some(c),
                Err(_) => {
                    slot.down_until = Some(Instant::now() + REPLICA_COOLDOWN);
                    return ReplicaOutcome::Unavailable;
                }
            }
        }
        let client = match slot.client.as_mut() {
            Some(c) => c,
            // Unreachable: populated just above.
            None => return ReplicaOutcome::Unavailable,
        };
        match client.run_with_watermark(query, params.to_vec(), min_watermark) {
            Ok((result, watermark)) => ReplicaOutcome::Served(result, watermark),
            // StaleReplica surfaces as WouldBlock: the replica is healthy
            // but behind; don't cool it down, just go elsewhere this call.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => ReplicaOutcome::Stale,
            // A replica refusing reads as "read only" means the query
            // classifier and the server disagree; treat as fatal so the
            // mismatch is visible instead of silently retried forever.
            Err(e) if e.kind() == io::ErrorKind::PermissionDenied => ReplicaOutcome::Fatal(e),
            Err(_) => {
                slot.client = None;
                slot.down_until = Some(Instant::now() + REPLICA_COOLDOWN);
                ReplicaOutcome::Unavailable
            }
        }
    }
}

enum ReplicaOutcome {
    Served(QueryResult, u64),
    Stale,
    Unavailable,
    Fatal(io::Error),
}
