//! Blocking client: one TCP connection, synchronous request/response —
//! the shape of one paper client thread — hardened for lossy networks.
//!
//! Resilience model (DESIGN.md §11):
//!
//! * **Timeouts everywhere.** Connecting is bounded by
//!   [`ClientConfig::connect_timeout`]; every request (write + read) is
//!   bounded by [`ClientConfig::request_timeout`]. A dead peer produces
//!   a timely error, never a hang.
//! * **Automatic reconnect + bounded retries.** Transport failures drop
//!   the connection and retry up to [`ClientConfig::retries`] times with
//!   exponential backoff and decorrelated jitter.
//! * **Idempotency gating.** Only requests that cannot mutate the
//!   database are retried after a transport failure: `Ping`, `Metrics`,
//!   `Shutdown`, and read-only `Run`s (classified by parsing the query).
//!   A write whose acknowledgement was lost is *never* replayed — the
//!   caller gets the transport error and must decide, so a commit cannot
//!   be double-applied. Typed `Overloaded` rejections are the exception:
//!   the server sheds those before execution, so any request may retry.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ErrorCode, Request, Response,
};
use crate::rng::SplitMix64;
use query::{QueryResult, Value};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Tunable resilience knobs for one [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect budget (also used for each reconnect attempt).
    pub connect_timeout: Duration,
    /// Socket read/write timeout covering one request/response exchange.
    pub request_timeout: Duration,
    /// Additional attempts after the first failure (0 = never retry).
    pub retries: u32,
    /// Lower bound of the decorrelated-jitter backoff.
    pub backoff_base: Duration,
    /// Upper bound of any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for the jitter RNG, so test schedules are reproducible.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5EED,
        }
    }
}

/// A connected Aion client.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    stream: Option<TcpStream>,
    rng: SplitMix64,
    prev_backoff: Duration,
    connected_once: bool,
    reconnects: u64,
}

impl Client {
    /// Connects to a running [`crate::Server`] with default resilience
    /// settings.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit resilience settings. The initial
    /// connection is established eagerly so an unreachable server fails
    /// here, not on the first request.
    pub fn connect_with(addr: SocketAddr, cfg: ClientConfig) -> io::Result<Client> {
        let prev_backoff = cfg.backoff_base;
        let mut client = Client {
            addr,
            rng: SplitMix64::new(cfg.jitter_seed),
            cfg,
            stream: None,
            prev_backoff,
            connected_once: false,
            reconnects: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Times this client reopened its connection (diagnostics/tests).
    pub fn reconnect_count(&self) -> u64 {
        self.reconnects
    }

    fn ensure_connected(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.cfg.request_timeout))?;
            stream.set_write_timeout(Some(self.cfg.request_timeout))?;
            self.stream = Some(stream);
            if self.connected_once {
                self.reconnects += 1;
            }
            self.connected_once = true;
        }
        match self.stream.as_mut() {
            Some(s) => Ok(s),
            // Unreachable: the branch above just populated it.
            None => Err(io::Error::other("connection unavailable")),
        }
    }

    /// Exponential backoff with decorrelated jitter: each sleep is drawn
    /// uniformly from `[base, 3 × previous]`, capped.
    fn backoff_sleep(&mut self) {
        let base = self.cfg.backoff_base.max(Duration::from_micros(100));
        let span = self.prev_backoff.max(base).saturating_mul(3);
        let spread = span
            .saturating_sub(base)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let sleep = (base + Duration::from_nanos(self.rng.below(spread.saturating_add(1))))
            .min(self.cfg.backoff_cap);
        self.prev_backoff = sleep;
        std::thread::sleep(sleep);
    }

    /// One wire exchange; any failure poisons the connection.
    fn attempt(&mut self, payload: &[u8]) -> io::Result<Response> {
        let result = (|| {
            let stream = self.ensure_connected()?;
            write_frame(stream, payload)?;
            let frame = read_frame(stream)?;
            decode_response(&frame)
        })();
        if result.is_err() {
            // The stream may hold half a frame; never reuse it.
            self.stream = None;
        }
        result
    }

    fn call(&mut self, req: &Request) -> io::Result<Response> {
        let payload = encode_request(req);
        let idempotent = request_is_idempotent(req);
        let mut attempts_left = self.cfg.retries;
        loop {
            match self.attempt(&payload) {
                // Admission-control rejection: the request was never
                // executed, so retrying is safe even for writes.
                Ok(Response::Err(e)) if e.code == ErrorCode::Overloaded && attempts_left > 0 => {
                    attempts_left -= 1;
                    self.stream = None;
                    self.backoff_sleep();
                }
                Ok(resp) => {
                    self.prev_backoff = self.cfg.backoff_base;
                    return Ok(resp);
                }
                Err(e) => {
                    if !idempotent || attempts_left == 0 {
                        return Err(normalize_transport_error(e));
                    }
                    attempts_left -= 1;
                    self.backoff_sleep();
                }
            }
        }
    }

    /// Executes a query with parameters; errors surface as `io::Error`
    /// whose kind mirrors the wire error code (`TimedOut`,
    /// `ResourceBusy`, `ConnectionAborted`, …).
    pub fn run(&mut self, query: &str, params: Vec<(String, Value)>) -> io::Result<QueryResult> {
        self.run_with_watermark(query, params, 0).map(|(r, _)| r)
    }

    /// Like [`run`], but requires the serving node to have replayed at
    /// least `min_watermark` (bounded staleness / read-your-writes) and
    /// returns the node's watermark alongside the result. A node behind
    /// the floor refuses with [`io::ErrorKind::WouldBlock`]
    /// (`StaleReplica`) instead of answering from old state.
    ///
    /// [`run`]: Client::run
    pub fn run_with_watermark(
        &mut self,
        query: &str,
        params: Vec<(String, Value)>,
        min_watermark: u64,
    ) -> io::Result<(QueryResult, u64)> {
        match self.call(&Request::Run {
            query: query.to_string(),
            params,
            min_watermark,
            page_size: 0,
            cursor: None,
        })? {
            Response::Ok {
                result, watermark, ..
            } => Ok((result, watermark)),
            Response::Err(e) => Err(e.into_io()),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Executes one page of a read query: at most `page_size` rows plus
    /// an opaque cursor to resume with (`None` when the result is
    /// complete). Pass a previous page's cursor to continue; the whole
    /// paged scan stays pinned to the first page's snapshot, so pages
    /// are mutually consistent even under concurrent writers. A corrupt
    /// or stale cursor fails with [`io::ErrorKind::InvalidInput`]
    /// (`CursorInvalid`) — restart from the first page.
    pub fn run_page(
        &mut self,
        query: &str,
        params: Vec<(String, Value)>,
        min_watermark: u64,
        page_size: u32,
        cursor: Option<Vec<u8>>,
    ) -> io::Result<PageResult> {
        match self.call(&Request::Run {
            query: query.to_string(),
            params,
            min_watermark,
            page_size,
            cursor,
        })? {
            Response::Ok {
                result,
                watermark,
                cursor,
            } => Ok(PageResult {
                result,
                cursor,
                watermark,
            }),
            Response::Err(e) => Err(e.into_io()),
            other => Err(unexpected_response(&other)),
        }
    }

    /// A pull-based paging iterator over a read query: each `next()` is
    /// one [`run_page`] round-trip, yielding that page's rows. Stops
    /// after the final page (or the first error).
    ///
    /// [`run_page`]: Client::run_page
    pub fn pages<'c>(
        &'c mut self,
        query: &str,
        params: Vec<(String, Value)>,
        page_size: u32,
    ) -> Pages<'c> {
        Pages {
            client: self,
            query: query.to_string(),
            params,
            page_size,
            cursor: None,
            started: false,
            done: false,
        }
    }

    /// Executes N statements in one wire round-trip (client-side
    /// pipelining over [`Request::RunBatch`]): the statements travel in a
    /// single frame, run in order on the server, and come back as one
    /// typed result per statement — a failed statement does not abort the
    /// ones after it. Returns the per-statement outcomes plus the serving
    /// node's watermark. The batch is retried after a transport failure
    /// only when *every* statement parses read-only; one write in the
    /// batch makes the whole frame non-replayable, exactly like a lone
    /// write `Run`.
    pub fn run_batch(
        &mut self,
        statements: Vec<(String, Vec<(String, Value)>)>,
        min_watermark: u64,
    ) -> io::Result<(Vec<Result<QueryResult, io::Error>>, u64)> {
        match self.call(&Request::RunBatch {
            statements,
            min_watermark,
        })? {
            Response::Batch { results, watermark } => Ok((
                results
                    .into_iter()
                    .map(|r| r.map_err(|e| e.into_io()))
                    .collect(),
                watermark,
            )),
            Response::Err(e) => Err(e.into_io()),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Ok { .. } => Ok(()),
            Response::Err(e) => Err(e.into_io()),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Fetches the server's process-wide metrics snapshot.
    pub fn metrics(&mut self) -> io::Result<obs::MetricsSnapshot> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            Response::Err(e) => Err(e.into_io()),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Requests server shutdown.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        let _ = self.call(&Request::Shutdown)?;
        Ok(())
    }

    /// Fetches the node's replication role snapshot (failover probing).
    pub fn status(&mut self) -> io::Result<NodeStatus> {
        match self.call(&Request::Status)? {
            Response::Status {
                epoch,
                read_only,
                fenced,
                latest_ts,
            } => Ok(NodeStatus {
                epoch,
                read_only,
                fenced,
                latest_ts,
            }),
            Response::Err(e) => Err(e.into_io()),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Asks this node to promote itself to primary; returns the new
    /// epoch. **Never retried** (a lost ack could bump the epoch twice);
    /// a transport failure surfaces to the caller, who should re-check
    /// [`Client::status`] before trying again.
    pub fn promote(&mut self) -> io::Result<u64> {
        match self.call(&Request::Promote)? {
            Response::Ok { result, .. } => match result.rows.first().and_then(|r| r.first()) {
                Some(Value::Int(epoch)) => Ok(u64::try_from(*epoch).unwrap_or(0)),
                _ => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "promotion reply missing the epoch column",
                )),
            },
            Response::Err(e) => Err(e.into_io()),
            other => Err(unexpected_response(&other)),
        }
    }
}

/// A node's replication role snapshot ([`Client::status`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeStatus {
    /// The node's current replication epoch (highest seen).
    pub epoch: u64,
    /// Whether the node refuses writes by role.
    pub read_only: bool,
    /// Whether the node's write path is fenced by a newer epoch.
    pub fenced: bool,
    /// Latest commit timestamp applied on the node.
    pub latest_ts: u64,
}

impl NodeStatus {
    /// Whether this node is currently accepting direct writes — what
    /// failover routing looks for (paired with the highest epoch).
    pub fn writable(&self) -> bool {
        !self.read_only && !self.fenced
    }
}

/// One page returned by [`Client::run_page`].
#[derive(Clone, PartialEq, Debug)]
pub struct PageResult {
    /// The page's rows.
    pub result: QueryResult,
    /// Resume token for the next page; `None` when complete.
    pub cursor: Option<Vec<u8>>,
    /// The serving node's replay watermark.
    pub watermark: u64,
}

/// Iterator state for [`Client::pages`].
pub struct Pages<'c> {
    client: &'c mut Client,
    query: String,
    params: Vec<(String, Value)>,
    page_size: u32,
    cursor: Option<Vec<u8>>,
    started: bool,
    done: bool,
}

impl Iterator for Pages<'_> {
    type Item = io::Result<QueryResult>;

    fn next(&mut self) -> Option<io::Result<QueryResult>> {
        if self.done || (self.started && self.cursor.is_none()) {
            return None;
        }
        self.started = true;
        match self.client.run_page(
            &self.query,
            self.params.clone(),
            0,
            self.page_size,
            self.cursor.clone(),
        ) {
            Ok(page) => {
                self.cursor = page.cursor;
                Some(Ok(page.result))
            }
            Err(e) => {
                // Keep the cursor across transport faults: paged reads
                // are idempotent, so the caller can simply call `next`
                // again and resume from the same token once the client
                // has re-routed or reconnected. Only a *semantic*
                // rejection (bad query, expired cursor) ends the
                // iterator for good.
                if e.kind() == io::ErrorKind::InvalidInput {
                    self.done = true;
                }
                Some(Err(e))
            }
        }
    }
}

/// True when replaying `req` after a lost acknowledgement cannot change
/// database state a second time.
pub(crate) fn request_is_idempotent(req: &Request) -> bool {
    match req {
        Request::Ping | Request::Metrics | Request::Shutdown => true,
        // Status is the read-only probe failover routing leans on; it
        // must always be safe to replay. Promote is the opposite: a
        // retry after a lost ack could bump the epoch twice, so clients
        // never auto-retry it.
        Request::Status => true,
        Request::Promote => false,
        Request::Run { query, .. } => query_is_read_only(query),
        Request::RunBatch { statements, .. } => statements
            .iter()
            .all(|(query, _)| query_is_read_only(query)),
    }
}

/// Whether `query` parses as a read-only statement. Unparseable text is
/// conservatively treated as a write (never retried, never routed to a
/// replica). Routing classifies each query exactly once with this and
/// threads the answer through retries/failover, so obs counters are not
/// double-counted when a replica-served read falls back to the primary.
pub(crate) fn query_is_read_only(query: &str) -> bool {
    query::parse(query)
        .map(|q| query::is_read_only(&q))
        .unwrap_or(false)
}

/// Socket timeouts surface as `WouldBlock` on most platforms; present
/// them as the `TimedOut` they mean.
fn normalize_transport_error(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::WouldBlock {
        io::Error::new(io::ErrorKind::TimedOut, e.to_string())
    } else {
        e
    }
}

fn unexpected_response(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response variant: {resp:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotency_classification() {
        assert!(request_is_idempotent(&Request::Ping));
        assert!(request_is_idempotent(&Request::Metrics));
        assert!(request_is_idempotent(&Request::Shutdown));
        assert!(request_is_idempotent(&Request::Status));
        assert!(!request_is_idempotent(&Request::Promote));
        let read = Request::Run {
            query: "MATCH (n) WHERE id(n) = 1 RETURN n".into(),
            params: vec![],
            min_watermark: 0,
            page_size: 0,
            cursor: None,
        };
        assert!(request_is_idempotent(&read));
        for write in [
            "CREATE (n {_id: 1})",
            "MATCH (n) WHERE id(n) = 1 SET n.x = 2",
            "MATCH (n) WHERE id(n) = 1 DELETE n",
        ] {
            assert!(
                !request_is_idempotent(&Request::Run {
                    query: write.into(),
                    params: vec![],
                    min_watermark: 0,
                    page_size: 0,
                    cursor: None,
                }),
                "{write} must not be retried"
            );
        }
        // Unparseable text is conservatively non-idempotent.
        assert!(!request_is_idempotent(&Request::Run {
            query: "NOT CYPHER".into(),
            params: vec![],
            min_watermark: 0,
            page_size: 0,
            cursor: None,
        }));
    }

    #[test]
    fn batch_idempotency_requires_every_statement_read_only() {
        let read = "MATCH (n) WHERE id(n) = 1 RETURN n".to_string();
        let write = "CREATE (n {_id: 7})".to_string();
        // All-reads batch: safe to replay after a lost ack.
        assert!(request_is_idempotent(&Request::RunBatch {
            statements: vec![(read.clone(), vec![]), (read.clone(), vec![])],
            min_watermark: 0,
        }));
        // One write poisons the whole frame.
        assert!(!request_is_idempotent(&Request::RunBatch {
            statements: vec![(read.clone(), vec![]), (write, vec![])],
            min_watermark: 0,
        }));
        // The empty batch mutates nothing.
        assert!(request_is_idempotent(&Request::RunBatch {
            statements: vec![],
            min_watermark: 0,
        }));
    }
}
