//! Blocking client: one TCP connection, synchronous request/response —
//! the shape of one paper client thread.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use query::{QueryResult, Value};
use std::io;
use std::net::{SocketAddr, TcpStream};

/// A connected Aion client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running [`crate::Server`].
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let frame = read_frame(&mut self.stream)?;
        decode_response(&frame)
    }

    /// Executes a query with parameters; errors surface as `io::Error`.
    pub fn run(&mut self, query: &str, params: Vec<(String, Value)>) -> io::Result<QueryResult> {
        match self.call(&Request::Run {
            query: query.to_string(),
            params,
        })? {
            Response::Ok(result) => Ok(result),
            Response::Err(msg) => Err(io::Error::other(msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Ok(_) => Ok(()),
            Response::Err(msg) => Err(io::Error::other(msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Fetches the server's process-wide metrics snapshot.
    pub fn metrics(&mut self) -> io::Result<obs::MetricsSnapshot> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            Response::Err(msg) => Err(io::Error::other(msg)),
            other => Err(unexpected_response(&other)),
        }
    }

    /// Requests server shutdown.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        let _ = self.call(&Request::Shutdown)?;
        Ok(())
    }
}

fn unexpected_response(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response variant: {resp:?}"),
    )
}
