//! # aion-server — a Bolt-style binary protocol over TCP (Sec. 6.7)
//!
//! The paper's end-to-end experiments run temporal Cypher "in a more
//! typical client-server arrangement over Bolt (Neo4j's communication
//! protocol)", because the networking/transaction layers add the systemic
//! overheads (cache misses, scheduling) that embedded mode hides.
//!
//! This crate provides that arrangement for the reproduction:
//!
//! * [`protocol`] — a compact length-prefixed binary wire format for
//!   queries, parameters and tabular results (the Bolt stand-in);
//! * [`server`] — a TCP server executing temporal Cypher against a shared
//!   [`aion::Aion`] with one worker thread per connection;
//! * [`client`] — a blocking client used by the benchmark drivers (each
//!   benchmark client thread owns one connection, like the paper's 32
//!   pinned client threads), with timeouts, reconnects, and
//!   idempotency-gated retries;
//! * [`routing`] — a replica-aware client routing reads to read
//!   replicas with read-your-writes watermark floors, falling back to
//!   the primary for writes and stale/unreachable replicas (DESIGN.md
//!   §13);
//! * [`chaos`] — a seeded fault-injecting TCP proxy for soak-testing the
//!   stack under deliberately degraded networks (DESIGN.md §11).

pub mod chaos;
pub mod client;
pub mod protocol;
mod rng;
pub mod routing;
pub mod server;
pub mod workers;

pub use chaos::{ChaosConfig, ChaosProxy};
pub use client::{Client, ClientConfig, NodeStatus};
pub use routing::{RoutedClient, ServedBy};
pub use server::{Server, ServerConfig, ServerStats};
