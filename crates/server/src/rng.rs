//! Small deterministic RNG (SplitMix64) shared by the client's retry
//! jitter and the chaos proxy. Dependency-free and stable across runs,
//! so a printed seed reproduces a schedule of faults or backoffs.

pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `p`.
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_hold() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }
}
