//! A seeded chaos proxy: a TCP man-in-the-middle that degrades the
//! client↔server byte stream on purpose.
//!
//! [`ChaosProxy`] listens on an ephemeral port and forwards every
//! connection to a target server through two pump threads (one per
//! direction). Each pump draws from a deterministic [`SplitMix64`]
//! stream seeded by `(config seed, connection index, direction)` and
//! injects, per forwarded chunk:
//!
//! * **delays** — a sleep before the chunk is forwarded;
//! * **byte corruption** — one byte of the chunk is flipped;
//! * **partial writes** — the chunk is forwarded in two flushes with a
//!   pause in between (exercises mid-frame reads on the far side);
//! * **mid-frame disconnects** — a prefix of the chunk is forwarded and
//!   then both sides of the connection are torn down.
//!
//! Fault *decisions* are a pure function of the seed and the chunk
//! index, so a printed seed reproduces the same fault schedule; chunk
//! boundaries depend on kernel buffering, which is exactly the
//! nondeterminism a network fault model should keep.
//!
//! The proxy is test infrastructure (`tests/chaos_soak.rs`, CI's
//! `chaos-soak` job), but lives in the library so the same storm can be
//! pointed at a long-running server from `examples/` or a bench driver.

use crate::rng::SplitMix64;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault plan for a [`ChaosProxy`]; probabilities are per forwarded
/// chunk and independent.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Master seed; every connection derives its own RNG stream from it.
    pub seed: u64,
    /// Probability of sleeping before forwarding a chunk.
    pub delay_prob: f64,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
    /// Probability of flipping one byte of a chunk.
    pub corrupt_prob: f64,
    /// Probability of splitting a chunk into two flushes with a pause.
    pub partial_write_prob: f64,
    /// Probability of forwarding only a prefix and killing the
    /// connection (the mid-frame disconnect).
    pub disconnect_prob: f64,
}

impl ChaosConfig {
    /// A storm with every fault class enabled at rates that let most
    /// requests through — useful as a soak-test default.
    pub fn storm(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_prob: 0.10,
            max_delay: Duration::from_millis(15),
            corrupt_prob: 0.02,
            partial_write_prob: 0.08,
            disconnect_prob: 0.02,
        }
    }

    /// Forwards every byte untouched (a plain TCP proxy).
    pub fn calm(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            corrupt_prob: 0.0,
            partial_write_prob: 0.0,
            disconnect_prob: 0.0,
        }
    }
}

/// Counts of injected faults, for assertions that a storm actually
/// stormed.
#[derive(Default, Debug)]
pub struct ChaosStats {
    /// Chunks delayed.
    pub delays: AtomicU64,
    /// Bytes flipped.
    pub corruptions: AtomicU64,
    /// Chunks split into two flushes.
    pub partial_writes: AtomicU64,
    /// Connections torn down mid-stream.
    pub disconnects: AtomicU64,
    /// Connections proxied in total.
    pub connections: AtomicU64,
}

impl ChaosStats {
    /// Total faults injected across all classes.
    pub fn total_faults(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
            + self.corruptions.load(Ordering::Relaxed)
            + self.partial_writes.load(Ordering::Relaxed)
            + self.disconnects.load(Ordering::Relaxed)
    }
}

/// Poll tick for pump reads (lets pumps notice `stop` while idle).
const PUMP_POLL: Duration = Duration::from_millis(10);

struct ProxyShared {
    cfg: ChaosConfig,
    stop: AtomicBool,
    stats: ChaosStats,
    // Every socket the proxy owns, so stop() can unblock every pump.
    socks: Mutex<Vec<TcpStream>>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

impl ProxyShared {
    fn lock_socks(&self) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
        match self.socks.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_pumps(&self) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
        match self.pumps.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A running chaos proxy.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts proxying `target` on an ephemeral localhost port.
    pub fn start(target: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            cfg,
            stop: AtomicBool::new(false),
            stats: ChaosStats::default(),
            socks: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        let shared2 = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("aion-chaos-accept".into())
            .spawn(move || accept_loop(&listener, target, &shared2))?;
        Ok(ChaosProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to instead of the server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Injected-fault counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.shared.stats
    }

    /// Stops accepting, tears down every proxied connection, and joins
    /// all pump threads.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for sock in self.shared.lock_socks().drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
        let pumps: Vec<JoinHandle<()>> = self.shared.lock_pumps().drain(..).collect();
        for p in pumps {
            let _ = p.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, target: SocketAddr, shared: &Arc<ProxyShared>) {
    let mut conn_id: u64 = 0;
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(client_side) = conn else { continue };
        let Ok(server_side) = TcpStream::connect_timeout(&target, Duration::from_secs(5)) else {
            // Target unreachable: drop the client (it sees a dead peer,
            // which is itself a fine fault to exercise).
            continue;
        };
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let seed = shared.cfg.seed;
        spawn_pump(shared, &client_side, &server_side, mix(seed, conn_id, 0));
        spawn_pump(shared, &server_side, &client_side, mix(seed, conn_id, 1));
        let mut socks = shared.lock_socks();
        socks.push(client_side);
        socks.push(server_side);
        conn_id += 1;
    }
}

/// Derives an independent RNG stream per (seed, connection, direction).
fn mix(seed: u64, conn: u64, dir: u64) -> u64 {
    SplitMix64::new(seed ^ conn.wrapping_mul(0x9E37_79B9).wrapping_add(dir)).next_u64()
}

fn spawn_pump(shared: &Arc<ProxyShared>, src: &TcpStream, dst: &TcpStream, seed: u64) {
    let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
        return;
    };
    let shared2 = shared.clone();
    let spawned = std::thread::Builder::new()
        .name("aion-chaos-pump".into())
        .spawn(move || pump(src, dst, seed, &shared2));
    if let Ok(handle) = spawned {
        shared.lock_pumps().push(handle);
    }
}

/// Forwards bytes from `src` to `dst`, injecting faults per chunk.
fn pump(mut src: TcpStream, mut dst: TcpStream, seed: u64, shared: &Arc<ProxyShared>) {
    let mut rng = SplitMix64::new(seed);
    let cfg = &shared.cfg;
    let stats = &shared.stats;
    if src.set_read_timeout(Some(PUMP_POLL)).is_err() {
        return;
    }
    let mut buf = [0u8; 4096];
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let chunk = &mut buf[..n];

        if rng.chance(cfg.delay_prob) {
            stats.delays.fetch_add(1, Ordering::Relaxed);
            let nanos = rng.below(cfg.max_delay.as_nanos().min(u128::from(u64::MAX)) as u64);
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        if rng.chance(cfg.corrupt_prob) {
            stats.corruptions.fetch_add(1, Ordering::Relaxed);
            let i = rng.below(n as u64) as usize;
            chunk[i] ^= 0xFF;
        }
        if rng.chance(cfg.disconnect_prob) {
            // Forward a strict prefix, then kill both directions: the
            // far side observes a connection dying mid-frame.
            stats.disconnects.fetch_add(1, Ordering::Relaxed);
            let cut = rng.below(n as u64) as usize;
            let _ = dst.write_all(&chunk[..cut]);
            let _ = dst.flush();
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let write_ok = if rng.chance(cfg.partial_write_prob) && n > 1 {
            stats.partial_writes.fetch_add(1, Ordering::Relaxed);
            let cut = 1 + rng.below(n as u64 - 1) as usize;
            dst.write_all(&chunk[..cut])
                .and_then(|()| dst.flush())
                .and_then(|()| {
                    std::thread::sleep(Duration::from_millis(1 + rng.below(4)));
                    dst.write_all(&chunk[cut..])
                })
                .and_then(|()| dst.flush())
                .is_ok()
        } else {
            dst.write_all(chunk).and_then(|()| dst.flush()).is_ok()
        };
        if !write_ok {
            break;
        }
    }
    // Propagate the close so neither endpoint waits on a half-dead pair.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}
