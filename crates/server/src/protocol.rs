//! The wire format: length-prefixed frames, type-tagged values.
//!
//! ```text
//! frame    := u32 payload_len, u64 fnv64(payload), payload
//! request  := 0x01 "RUN"  u16 qlen, query, u16 nparams, nparams × param,
//!                         u64 min_watermark, u32 page_size,
//!                         u8 has_cursor, [u32 clen, cursor]
//!           | 0x02 "PING"
//!           | 0x03 "SHUTDOWN"
//!           | 0x04 "METRICS"
//!           | 0x05 "RUNBATCH" u32 nstmts, nstmts × stmt, u64 min_watermark
//!           | 0x06 "PROMOTE"
//!           | 0x07 "STATUS"
//! stmt     := u16 qlen, query, u16 nparams, nparams × param
//! param    := u16 klen, key, value
//! response := 0x00 "OK"   result, u64 watermark,
//!                          u8 has_cursor, [u32 clen, cursor]
//!           | 0x01 "ERR"  u8 code, str
//!           | 0x02 "METRICS" u32 nctr, nctr × (str, u64),
//!                            u32 ngauge, ngauge × (str, i64),
//!                            u32 nhist, nhist × (str, 5 × u64)
//!           | 0x03 "BATCH" u32 nstmts, nstmts × item, u64 watermark
//!           | 0x04 "STATUS" u64 epoch, u8 read_only, u8 fenced,
//!                           u64 latest_ts
//! item     := 0x00 result | 0x01 u8 code, str
//! result   := u16 ncols, ncols × str, u32 nrows, rows × row
//! row      := ncols × value
//! value    := tag, payload (see `write_value`)
//! ```

use obs::{HistogramSnapshot, MetricsSnapshot};
use query::{QueryResult, Value};
use std::io::{self, Read, Write};

/// Request messages.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Execute a query with parameters.
    Run {
        /// Temporal Cypher text.
        query: String,
        /// `$name` parameter bindings.
        params: Vec<(String, Value)>,
        /// Bounded-staleness floor: the serving node must have replayed
        /// at least this commit timestamp or refuse with
        /// [`ErrorCode::StaleReplica`]. `0` means "any state is fine"
        /// and is always satisfiable (the primary is never stale).
        min_watermark: u64,
        /// Maximum rows per response; `0` means unpaged (the full
        /// result in one frame, no cursor issued).
        page_size: u32,
        /// Opaque resume token from a previous [`Response::Ok`]. `None`
        /// starts a fresh (first) page.
        cursor: Option<Vec<u8>>,
    },
    /// Liveness check.
    Ping,
    /// Ask the server to stop accepting connections.
    Shutdown,
    /// Fetch a snapshot of the server's process-wide metrics.
    Metrics,
    /// Execute N statements in one frame: one round-trip and (on the
    /// server) one submission window, so network latency amortizes the
    /// same way group commit amortizes fsyncs. Statements run in order;
    /// each gets its own typed result in the [`Response::Batch`] reply,
    /// and a failed statement does not abort the ones after it.
    RunBatch {
        /// `(query, params)` per statement, executed in order.
        statements: Vec<(String, Vec<(String, Value)>)>,
        /// Bounded-staleness floor applied to the whole batch (see
        /// [`Request::Run::min_watermark`]).
        min_watermark: u64,
    },
    /// Ask this node to promote itself to primary (failover control
    /// plane; DESIGN.md §17). Only honoured when the server was wired
    /// with a promote handler; refused with [`ErrorCode::Generic`]
    /// otherwise. **Not idempotent** — a retry could bump the epoch
    /// twice — so clients never auto-retry it.
    Promote,
    /// Fetch the node's replication role snapshot ([`Response::Status`]).
    /// Read-only and always safe to retry; this is what failover routing
    /// probes to find the current primary.
    Status,
}

/// Machine-readable failure class carried on every `ERR` frame, so
/// clients can make retry decisions without parsing message text.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ErrorCode {
    /// Query/protocol failure: the request was executed (or rejected)
    /// authoritatively; retrying would repeat the same answer.
    Generic = 0,
    /// The per-request deadline expired; execution was aborted at a
    /// cooperative check point. A write may or may not have committed.
    Timeout = 1,
    /// Admission control shed the connection before any request was
    /// executed; always safe to retry after backoff.
    Overloaded = 2,
    /// The server is draining; the request was refused (or aborted)
    /// because of shutdown, not because of its content.
    ShuttingDown = 3,
    /// A replica's replay watermark is behind the request's
    /// `min_watermark`; the read was refused without executing. Safe to
    /// retry elsewhere (another replica, or the primary).
    StaleReplica = 4,
    /// A write (or other non-read request) reached a read-only replica;
    /// it was refused without executing. Route it to the primary.
    ReadOnlyReplica = 5,
    /// The result outgrew the per-request row/byte budget; the query was
    /// aborted mid-stream. Not retryable as-is: page it or narrow it.
    BudgetExceeded = 6,
    /// The pagination cursor was corrupt, minted for a different query,
    /// or its anchor no longer resolves at the pinned snapshot. Restart
    /// the scan from the first page.
    CursorInvalid = 7,
    /// This node was deposed: a newer replication epoch exists and the
    /// write was refused without executing (DESIGN.md §17). Probe the
    /// cluster for the highest-epoch writable node and route there.
    Fenced = 8,
}

impl ErrorCode {
    fn from_u8(b: u8) -> ErrorCode {
        match b {
            1 => ErrorCode::Timeout,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::StaleReplica,
            5 => ErrorCode::ReadOnlyReplica,
            6 => ErrorCode::BudgetExceeded,
            7 => ErrorCode::CursorInvalid,
            8 => ErrorCode::Fenced,
            _ => ErrorCode::Generic,
        }
    }
}

/// A typed wire-level error: class + human-readable message.
#[derive(Clone, PartialEq, Debug)]
pub struct WireError {
    /// Failure class (drives client retry policy).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// A [`ErrorCode::Generic`] error.
    pub fn generic(message: impl Into<String>) -> WireError {
        WireError {
            code: ErrorCode::Generic,
            message: message.into(),
        }
    }

    /// A typed error with an explicit code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// Converts to an `io::Error` whose kind mirrors the wire code.
    pub fn into_io(self) -> io::Error {
        let kind = match self.code {
            ErrorCode::Generic => io::ErrorKind::Other,
            ErrorCode::Timeout => io::ErrorKind::TimedOut,
            ErrorCode::Overloaded => io::ErrorKind::ResourceBusy,
            ErrorCode::ShuttingDown => io::ErrorKind::ConnectionAborted,
            ErrorCode::StaleReplica => io::ErrorKind::WouldBlock,
            ErrorCode::ReadOnlyReplica => io::ErrorKind::PermissionDenied,
            ErrorCode::BudgetExceeded => io::ErrorKind::OutOfMemory,
            ErrorCode::CursorInvalid => io::ErrorKind::InvalidInput,
            // Not `PermissionDenied` (taken by ReadOnlyReplica, which
            // routing treats as a fatal misconfiguration): a fence means
            // "the primary moved", which is precisely a lost connection
            // to the real primary.
            ErrorCode::Fenced => io::ErrorKind::NotConnected,
        };
        io::Error::new(kind, self.message)
    }
}

/// Response messages.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Successful query result, tagged with the serving node's replay
    /// watermark (latest committed timestamp visible to the query). On
    /// the primary this is simply the latest commit; on a replica it is
    /// how far replay has progressed, letting clients chain
    /// read-your-writes via `min_watermark`.
    Ok {
        /// The query result rows.
        result: QueryResult,
        /// Latest commit timestamp applied on the serving node.
        watermark: u64,
        /// Opaque resume token when this is a non-final page of a paged
        /// request; `None` when the result is complete.
        cursor: Option<Vec<u8>>,
    },
    /// Typed failure.
    Err(WireError),
    /// Metrics snapshot (reply to [`Request::Metrics`]).
    Metrics(MetricsSnapshot),
    /// Per-statement results for a [`Request::RunBatch`], in statement
    /// order, tagged with the serving node's watermark once.
    Batch {
        /// One typed outcome per statement.
        results: Vec<std::result::Result<QueryResult, WireError>>,
        /// Latest commit timestamp applied on the serving node.
        watermark: u64,
    },
    /// Replication role snapshot (reply to [`Request::Status`]).
    /// Failover routing picks the highest-epoch node with
    /// `read_only == false && fenced == false` as the primary.
    Status {
        /// The node's current replication epoch.
        epoch: u64,
        /// Whether the query server refuses writes by role.
        read_only: bool,
        /// Whether the write path is fenced (a newer epoch was seen).
        fenced: bool,
        /// Latest commit timestamp applied on this node.
        latest_ts: u64,
    },
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_NODE: u8 = 5;
const TAG_REL: u8 = 6;
const TAG_LIST: u8 = 7;

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize) -> io::Result<String> {
    let len = read_u32(buf, pos)? as usize;
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated string"))?;
    *pos += len;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid utf-8"))
}

fn read_u32(buf: &[u8], pos: &mut usize) -> io::Result<u32> {
    let bytes: [u8; 4] = buf
        .get(*pos..*pos + 4)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated u32"))?;
    *pos += 4;
    Ok(u32::from_le_bytes(bytes))
}

fn read_u64(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let bytes: [u8; 8] = buf
        .get(*pos..*pos + 8)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated u64"))?;
    *pos += 8;
    Ok(u64::from_le_bytes(bytes))
}

fn read_u16(buf: &[u8], pos: &mut usize) -> io::Result<u16> {
    let bytes: [u8; 2] = buf
        .get(*pos..*pos + 2)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated u16"))?;
    *pos += 2;
    Ok(u16::from_le_bytes(bytes))
}

fn read_u8(buf: &[u8], pos: &mut usize) -> io::Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated u8"))?;
    *pos += 1;
    Ok(b)
}

/// Serializes one value.
pub fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_str(out, s);
        }
        Value::Node {
            id,
            labels,
            props,
            valid,
        } => {
            out.push(TAG_NODE);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(labels.len() as u16).to_le_bytes());
            for l in labels {
                write_str(out, l);
            }
            out.extend_from_slice(&(props.len() as u16).to_le_bytes());
            for (k, v) in props {
                write_str(out, k);
                write_value(out, v);
            }
            match valid {
                Some((s, e)) => {
                    out.push(1);
                    out.extend_from_slice(&s.to_le_bytes());
                    out.extend_from_slice(&e.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        Value::Rel {
            id,
            src,
            tgt,
            rel_type,
            props,
            valid,
        } => {
            out.push(TAG_REL);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&tgt.to_le_bytes());
            match rel_type {
                Some(t) => {
                    out.push(1);
                    write_str(out, t);
                }
                None => out.push(0),
            }
            out.extend_from_slice(&(props.len() as u16).to_le_bytes());
            for (k, v) in props {
                write_str(out, k);
                write_value(out, v);
            }
            match valid {
                Some((s, e)) => {
                    out.push(1);
                    out.extend_from_slice(&s.to_le_bytes());
                    out.extend_from_slice(&e.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        Value::List(vs) => {
            out.push(TAG_LIST);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                write_value(out, v);
            }
        }
    }
}

/// Deserializes one value.
pub fn read_value(buf: &[u8], pos: &mut usize) -> io::Result<Value> {
    let tag = read_u8(buf, pos)?;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(read_u8(buf, pos)? != 0),
        TAG_INT => Value::Int(read_u64(buf, pos)? as i64),
        TAG_FLOAT => Value::Float(f64::from_bits(read_u64(buf, pos)?)),
        TAG_STR => Value::Str(read_str(buf, pos)?),
        TAG_NODE => {
            let id = read_u64(buf, pos)?;
            let nlabels = read_u16(buf, pos)? as usize;
            let mut labels = Vec::with_capacity(nlabels);
            for _ in 0..nlabels {
                labels.push(read_str(buf, pos)?);
            }
            let nprops = read_u16(buf, pos)? as usize;
            let mut props = Vec::with_capacity(nprops);
            for _ in 0..nprops {
                let k = read_str(buf, pos)?;
                props.push((k, read_value(buf, pos)?));
            }
            let valid = if read_u8(buf, pos)? == 1 {
                Some((read_u64(buf, pos)?, read_u64(buf, pos)?))
            } else {
                None
            };
            Value::Node {
                id,
                labels,
                props,
                valid,
            }
        }
        TAG_REL => {
            let id = read_u64(buf, pos)?;
            let src = read_u64(buf, pos)?;
            let tgt = read_u64(buf, pos)?;
            let rel_type = if read_u8(buf, pos)? == 1 {
                Some(read_str(buf, pos)?)
            } else {
                None
            };
            let nprops = read_u16(buf, pos)? as usize;
            let mut props = Vec::with_capacity(nprops);
            for _ in 0..nprops {
                let k = read_str(buf, pos)?;
                props.push((k, read_value(buf, pos)?));
            }
            let valid = if read_u8(buf, pos)? == 1 {
                Some((read_u64(buf, pos)?, read_u64(buf, pos)?))
            } else {
                None
            };
            Value::Rel {
                id,
                src,
                tgt,
                rel_type,
                props,
                valid,
            }
        }
        TAG_LIST => {
            let n = read_u32(buf, pos)? as usize;
            let mut vs = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                vs.push(read_value(buf, pos)?);
            }
            Value::List(vs)
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown value tag {other}"),
            ))
        }
    })
}

/// Serializes a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Run {
            query,
            params,
            min_watermark,
            page_size,
            cursor,
        } => {
            out.push(0x01);
            write_str(&mut out, query);
            out.extend_from_slice(&(params.len() as u16).to_le_bytes());
            for (k, v) in params {
                write_str(&mut out, k);
                write_value(&mut out, v);
            }
            out.extend_from_slice(&min_watermark.to_le_bytes());
            out.extend_from_slice(&page_size.to_le_bytes());
            write_opt_bytes(&mut out, cursor.as_deref());
        }
        Request::Ping => out.push(0x02),
        Request::Shutdown => out.push(0x03),
        Request::Metrics => out.push(0x04),
        Request::RunBatch {
            statements,
            min_watermark,
        } => {
            out.push(0x05);
            out.extend_from_slice(&(statements.len() as u32).to_le_bytes());
            for (query, params) in statements {
                write_str(&mut out, query);
                out.extend_from_slice(&(params.len() as u16).to_le_bytes());
                for (k, v) in params {
                    write_str(&mut out, k);
                    write_value(&mut out, v);
                }
            }
            out.extend_from_slice(&min_watermark.to_le_bytes());
        }
        Request::Promote => out.push(0x06),
        Request::Status => out.push(0x07),
    }
    out
}

/// Deserializes a request payload.
pub fn decode_request(buf: &[u8]) -> io::Result<Request> {
    let mut pos = 0;
    let kind = read_u8(buf, &mut pos)?;
    Ok(match kind {
        0x01 => {
            let query = read_str(buf, &mut pos)?;
            let nparams = read_u16(buf, &mut pos)? as usize;
            let mut params = Vec::with_capacity(nparams);
            for _ in 0..nparams {
                let k = read_str(buf, &mut pos)?;
                params.push((k, read_value(buf, &mut pos)?));
            }
            let min_watermark = read_u64(buf, &mut pos)?;
            let page_size = read_u32(buf, &mut pos)?;
            let cursor = read_opt_bytes(buf, &mut pos)?;
            Request::Run {
                query,
                params,
                min_watermark,
                page_size,
                cursor,
            }
        }
        0x02 => Request::Ping,
        0x03 => Request::Shutdown,
        0x04 => Request::Metrics,
        0x05 => {
            let n = read_u32(buf, &mut pos)? as usize;
            let mut statements = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let query = read_str(buf, &mut pos)?;
                let nparams = read_u16(buf, &mut pos)? as usize;
                let mut params = Vec::with_capacity(nparams);
                for _ in 0..nparams {
                    let k = read_str(buf, &mut pos)?;
                    params.push((k, read_value(buf, &mut pos)?));
                }
                statements.push((query, params));
            }
            let min_watermark = read_u64(buf, &mut pos)?;
            Request::RunBatch {
                statements,
                min_watermark,
            }
        }
        0x06 => Request::Promote,
        0x07 => Request::Status,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown request kind {other}"),
            ))
        }
    })
}

/// Serializes an optional opaque byte blob (cursor tokens).
fn write_opt_bytes(out: &mut Vec<u8>, bytes: Option<&[u8]>) {
    match bytes {
        Some(b) => {
            out.push(1);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        None => out.push(0),
    }
}

/// Deserializes an optional opaque byte blob (cursor tokens, capped at
/// 64 KiB — real tokens are 44 bytes).
fn read_opt_bytes(buf: &[u8], pos: &mut usize) -> io::Result<Option<Vec<u8>>> {
    if read_u8(buf, pos)? == 0 {
        return Ok(None);
    }
    let len = read_u32(buf, pos)? as usize;
    if len > 65_536 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "cursor blob too big",
        ));
    }
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated cursor blob"))?;
    *pos += len;
    Ok(Some(bytes.to_vec()))
}

/// Serializes one query result (shared by `OK` and `BATCH` items).
fn write_result(out: &mut Vec<u8>, result: &QueryResult) {
    out.extend_from_slice(&(result.columns.len() as u16).to_le_bytes());
    for c in &result.columns {
        write_str(out, c);
    }
    out.extend_from_slice(&(result.rows.len() as u32).to_le_bytes());
    for row in &result.rows {
        for v in row {
            write_value(out, v);
        }
    }
}

/// Deserializes one query result (shared by `OK` and `BATCH` items).
fn read_result(buf: &[u8], pos: &mut usize) -> io::Result<QueryResult> {
    let ncols = read_u16(buf, pos)? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(read_str(buf, pos)?);
    }
    let nrows = read_u32(buf, pos)? as usize;
    // Zero-column rows consume no payload bytes, so a malformed
    // header could otherwise demand billions of loop iterations.
    if ncols == 0 && nrows > 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "rows without columns",
        ));
    }
    let mut rows = Vec::with_capacity(nrows.min(1 << 20));
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(read_value(buf, pos)?);
        }
        rows.push(row);
    }
    Ok(QueryResult { columns, rows })
}

/// Serializes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Ok {
            result,
            watermark,
            cursor,
        } => {
            out.push(0x00);
            write_result(&mut out, result);
            out.extend_from_slice(&watermark.to_le_bytes());
            write_opt_bytes(&mut out, cursor.as_deref());
        }
        Response::Err(err) => {
            out.push(0x01);
            out.push(err.code as u8);
            write_str(&mut out, &err.message);
        }
        Response::Batch { results, watermark } => {
            out.push(0x03);
            out.extend_from_slice(&(results.len() as u32).to_le_bytes());
            for item in results {
                match item {
                    Ok(result) => {
                        out.push(0x00);
                        write_result(&mut out, result);
                    }
                    Err(err) => {
                        out.push(0x01);
                        out.push(err.code as u8);
                        write_str(&mut out, &err.message);
                    }
                }
            }
            out.extend_from_slice(&watermark.to_le_bytes());
        }
        Response::Status {
            epoch,
            read_only,
            fenced,
            latest_ts,
        } => {
            out.push(0x04);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.push(u8::from(*read_only));
            out.push(u8::from(*fenced));
            out.extend_from_slice(&latest_ts.to_le_bytes());
        }
        Response::Metrics(snap) => {
            out.push(0x02);
            out.extend_from_slice(&(snap.counters.len() as u32).to_le_bytes());
            for (name, v) in &snap.counters {
                write_str(&mut out, name);
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(snap.gauges.len() as u32).to_le_bytes());
            for (name, v) in &snap.gauges {
                write_str(&mut out, name);
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(snap.histograms.len() as u32).to_le_bytes());
            for h in &snap.histograms {
                write_str(&mut out, &h.name);
                for v in [h.count, h.sum, h.p50, h.p95, h.p99] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Deserializes a response payload.
pub fn decode_response(buf: &[u8]) -> io::Result<Response> {
    let mut pos = 0;
    match read_u8(buf, &mut pos)? {
        0x00 => {
            let result = read_result(buf, &mut pos)?;
            let watermark = read_u64(buf, &mut pos)?;
            let cursor = read_opt_bytes(buf, &mut pos)?;
            Ok(Response::Ok {
                result,
                watermark,
                cursor,
            })
        }
        0x01 => {
            let code = ErrorCode::from_u8(read_u8(buf, &mut pos)?);
            Ok(Response::Err(WireError {
                code,
                message: read_str(buf, &mut pos)?,
            }))
        }
        0x02 => {
            let nctr = read_u32(buf, &mut pos)? as usize;
            let mut counters = Vec::with_capacity(nctr.min(65_536));
            for _ in 0..nctr {
                let name = read_str(buf, &mut pos)?;
                counters.push((name, read_u64(buf, &mut pos)?));
            }
            let ngauge = read_u32(buf, &mut pos)? as usize;
            let mut gauges = Vec::with_capacity(ngauge.min(65_536));
            for _ in 0..ngauge {
                let name = read_str(buf, &mut pos)?;
                gauges.push((name, read_u64(buf, &mut pos)? as i64));
            }
            let nhist = read_u32(buf, &mut pos)? as usize;
            let mut histograms = Vec::with_capacity(nhist.min(65_536));
            for _ in 0..nhist {
                let name = read_str(buf, &mut pos)?;
                let count = read_u64(buf, &mut pos)?;
                let sum = read_u64(buf, &mut pos)?;
                let p50 = read_u64(buf, &mut pos)?;
                let p95 = read_u64(buf, &mut pos)?;
                let p99 = read_u64(buf, &mut pos)?;
                histograms.push(HistogramSnapshot {
                    name,
                    count,
                    sum,
                    p50,
                    p95,
                    p99,
                });
            }
            Ok(Response::Metrics(MetricsSnapshot {
                counters,
                gauges,
                histograms,
            }))
        }
        0x03 => {
            let n = read_u32(buf, &mut pos)? as usize;
            let mut results = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                match read_u8(buf, &mut pos)? {
                    0x00 => results.push(Ok(read_result(buf, &mut pos)?)),
                    0x01 => {
                        let code = ErrorCode::from_u8(read_u8(buf, &mut pos)?);
                        results.push(Err(WireError {
                            code,
                            message: read_str(buf, &mut pos)?,
                        }));
                    }
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unknown batch item tag {other}"),
                        ))
                    }
                }
            }
            let watermark = read_u64(buf, &mut pos)?;
            Ok(Response::Batch { results, watermark })
        }
        0x04 => {
            let epoch = read_u64(buf, &mut pos)?;
            let read_only = read_u8(buf, &mut pos)? != 0;
            let fenced = read_u8(buf, &mut pos)? != 0;
            let latest_ts = read_u64(buf, &mut pos)?;
            Ok(Response::Status {
                epoch,
                read_only,
                fenced,
                latest_ts,
            })
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response kind {other}"),
        )),
    }
}

/// FNV-1a over the payload, carried in every frame header. TCP's
/// 16-bit checksum is weak and proxies/middleboxes can corrupt bytes
/// above it; a flipped byte in a `Run` frame could otherwise decode as
/// a *different valid query* and commit the wrong write. With the
/// digest, corruption is detected at the framing layer and surfaces as
/// a connection error the client may retry (idempotency permitting).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Validates a frame payload length against the u32 length prefix. A
/// payload over `u32::MAX` bytes must be rejected, not silently truncated
/// by an `as u32` cast (which would desynchronise the stream).
fn frame_len(payload_len: usize) -> io::Result<u32> {
    u32::try_from(payload_len).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32::MAX bytes",
        )
    })
}

/// Writes one length-prefixed, checksummed frame. Fails with
/// [`io::ErrorKind::InvalidInput`] if the payload cannot be represented
/// in the u32 length prefix.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_len(payload.len())?.to_le_bytes())?;
    w.write_all(&fnv64(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame (up to 256 MiB), verifying its
/// checksum; a digest mismatch is [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let (len, sum) = parse_frame_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    verify_frame_checksum(&payload, sum)?;
    Ok(payload)
}

/// Splits a 12-byte frame header into (payload length, checksum),
/// rejecting lengths over the 256 MiB cap before any allocation.
pub(crate) fn parse_frame_header(header: &[u8; 12]) -> io::Result<(usize, u64)> {
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > 256 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too big"));
    }
    let sum = u64::from_le_bytes([
        header[4], header[5], header[6], header[7], header[8], header[9], header[10], header[11],
    ]);
    Ok((len, sum))
}

/// Compares a received payload against its header checksum.
pub(crate) fn verify_frame_checksum(payload: &[u8], sum: u64) -> io::Result<()> {
    if fnv64(payload) != sum {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::Run {
            query: "MATCH (n) WHERE id(n) = $id RETURN n".into(),
            params: vec![("id".into(), Value::Int(42))],
            min_watermark: 9_001,
            page_size: 0,
            cursor: None,
        };
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back, req);
        let paged = Request::Run {
            query: "MATCH (n) RETURN n".into(),
            params: vec![],
            min_watermark: 0,
            page_size: 64,
            cursor: Some(vec![0xA1, 0x0C, 0x01, 0x02]),
        };
        assert_eq!(decode_request(&encode_request(&paged)).unwrap(), paged);
        assert_eq!(
            decode_request(&encode_request(&Request::Ping)).unwrap(),
            Request::Ping
        );
        assert_eq!(
            decode_request(&encode_request(&Request::Shutdown)).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            decode_request(&encode_request(&Request::Promote)).unwrap(),
            Request::Promote
        );
        assert_eq!(
            decode_request(&encode_request(&Request::Status)).unwrap(),
            Request::Status
        );
    }

    #[test]
    fn status_response_roundtrip() {
        for (read_only, fenced) in [(false, false), (true, false), (false, true), (true, true)] {
            let resp = Response::Status {
                epoch: 7,
                read_only,
                fenced,
                latest_ts: 1234,
            };
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn response_roundtrip_with_entities() {
        let result = QueryResult {
            columns: vec!["n".into(), "r".into()],
            rows: vec![vec![
                Value::Node {
                    id: 3,
                    labels: vec!["Person".into()],
                    props: vec![
                        ("age".into(), Value::Int(30)),
                        ("ok".into(), Value::Bool(true)),
                    ],
                    valid: Some((1, 9)),
                },
                Value::Rel {
                    id: 7,
                    src: 3,
                    tgt: 4,
                    rel_type: Some("KNOWS".into()),
                    props: vec![("w".into(), Value::Float(0.5))],
                    valid: None,
                },
            ]],
        };
        let resp = Response::Ok {
            result,
            watermark: 17,
            cursor: Some(vec![1, 2, 3]),
        };
        let back = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn error_and_nested_list_roundtrip() {
        let resp = Response::Err(WireError::generic("boom"));
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        let mut out = Vec::new();
        let v = Value::List(vec![Value::Null, Value::List(vec![Value::Int(-1)])]);
        write_value(&mut out, &v);
        let mut pos = 0;
        assert_eq!(read_value(&out, &mut pos).unwrap(), v);
        assert_eq!(pos, out.len());
    }

    #[test]
    fn frames_over_a_pipe() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(read_frame(&mut cursor).is_err(), "eof");
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(decode_request(&[0xFF]).is_err());
        assert!(decode_response(&[0x55]).is_err());
        assert!(read_value(&[200], &mut 0).is_err());
    }

    #[test]
    fn error_codes_roundtrip_and_map_to_io_kinds() {
        for (code, kind) in [
            (ErrorCode::Generic, io::ErrorKind::Other),
            (ErrorCode::Timeout, io::ErrorKind::TimedOut),
            (ErrorCode::Overloaded, io::ErrorKind::ResourceBusy),
            (ErrorCode::ShuttingDown, io::ErrorKind::ConnectionAborted),
            (ErrorCode::StaleReplica, io::ErrorKind::WouldBlock),
            (ErrorCode::ReadOnlyReplica, io::ErrorKind::PermissionDenied),
            (ErrorCode::BudgetExceeded, io::ErrorKind::OutOfMemory),
            (ErrorCode::CursorInvalid, io::ErrorKind::InvalidInput),
            (ErrorCode::Fenced, io::ErrorKind::NotConnected),
        ] {
            let resp = Response::Err(WireError::new(code, "m"));
            let back = decode_response(&encode_response(&resp)).unwrap();
            assert_eq!(back, resp);
            let Response::Err(e) = back else {
                panic!("expected error response")
            };
            assert_eq!(e.into_io().kind(), kind);
        }
        // Unknown future codes degrade to Generic instead of failing.
        assert_eq!(ErrorCode::from_u8(200), ErrorCode::Generic);
    }

    #[test]
    fn run_batch_roundtrip() {
        let req = Request::RunBatch {
            statements: vec![
                (
                    "CREATE (n:Person {id: $id})".into(),
                    vec![("id".into(), Value::Int(1))],
                ),
                ("MATCH (n) RETURN n".into(), vec![]),
            ],
            min_watermark: 42,
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        // An empty batch is wire-legal.
        let empty = Request::RunBatch {
            statements: vec![],
            min_watermark: 0,
        };
        assert_eq!(decode_request(&encode_request(&empty)).unwrap(), empty);
    }

    #[test]
    fn batch_response_roundtrip_mixes_ok_and_err() {
        let resp = Response::Batch {
            results: vec![
                Ok(QueryResult {
                    columns: vec!["n".into()],
                    rows: vec![vec![Value::Int(7)]],
                }),
                Err(WireError::new(ErrorCode::Timeout, "deadline")),
                Ok(QueryResult {
                    columns: vec![],
                    rows: vec![],
                }),
            ],
            watermark: 99,
        };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        // Unknown item tags are a protocol error, not a panic.
        let mut bytes = encode_response(&Response::Batch {
            results: vec![Err(WireError::generic("x"))],
            watermark: 0,
        });
        bytes[5] = 0x7F; // item tag of the first (only) entry
        assert!(decode_response(&bytes).is_err());
    }

    #[test]
    fn metrics_request_roundtrip() {
        assert_eq!(
            decode_request(&encode_request(&Request::Metrics)).unwrap(),
            Request::Metrics
        );
    }

    #[test]
    fn metrics_response_roundtrip() {
        let resp = Response::Metrics(MetricsSnapshot {
            counters: vec![("pagestore.cache.hits".into(), 17), ("x".into(), 0)],
            gauges: vec![("queue.depth".into(), -3)],
            histograms: vec![HistogramSnapshot {
                name: "core.commit.latency_ns".into(),
                count: 5,
                sum: 1000,
                p50: 128,
                p95: 512,
                p99: 512,
            }],
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        // An empty snapshot round-trips too.
        let empty = Response::Metrics(MetricsSnapshot::default());
        assert_eq!(decode_response(&encode_response(&empty)).unwrap(), empty);
    }

    #[test]
    fn oversized_write_frame_rejected() {
        // The length check is separable from write_frame so this test does
        // not have to allocate a >4 GiB payload.
        assert_eq!(frame_len(0).unwrap(), 0);
        assert_eq!(frame_len(u32::MAX as usize).unwrap(), u32::MAX);
        if let Some(too_big) = (u32::MAX as usize).checked_add(1) {
            let err = frame_len(too_big).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        }
    }

    #[test]
    fn oversized_read_frame_rejected() {
        // A header advertising more than the 256 MiB cap must be refused
        // before any payload allocation happens.
        let mut header = ((257u32 << 20).to_le_bytes()).to_vec();
        header.extend_from_slice(&0u64.to_le_bytes());
        let mut cursor = std::io::Cursor::new(header);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupted_frame_rejected_by_checksum() {
        // A single flipped payload byte (what the chaos proxy injects)
        // must fail checksum verification rather than decode as some
        // other valid message.
        let mut frame = Vec::new();
        write_frame(&mut frame, &encode_request(&Request::Ping)).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(frame);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }
}
