//! The TCP server: accept loop + one worker thread per connection, all
//! executing against a shared [`aion::Aion`] — hardened for degraded
//! networks.
//!
//! Resilience model (DESIGN.md §11):
//!
//! * **Admission control.** At most [`ServerConfig::max_connections`]
//!   workers exist at once; connections past the cap receive one typed
//!   `Overloaded` error frame and are closed (`server.shed`), so load
//!   spikes degrade into fast rejections instead of unbounded threads.
//! * **Timeouts.** Sockets poll on a short read timeout: a peer that
//!   stalls mid-frame for longer than [`ServerConfig::io_timeout`] is
//!   dropped, and each `Run` executes under a cooperative
//!   [`query::ExecBudget`] capped at [`ServerConfig::request_deadline`]
//!   (aborts surface as typed `Timeout` errors, not hung workers).
//! * **Graceful drain.** Workers are tracked in a [`WorkerSet`];
//!   [`Server::shutdown`] stops admissions, lets in-flight requests
//!   finish up to [`ServerConfig::drain_deadline`], then force-closes
//!   stragglers (`server.drain_forced`) and joins every worker thread,
//!   so a stopped server owns zero threads.

use crate::protocol::{
    decode_request, encode_response, parse_frame_header, verify_frame_checksum, write_frame,
    ErrorCode, Request, Response, WireError,
};
use crate::workers::WorkerSet;
use aion::Aion;
use query::{ExecBudget, Params};
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A `Run` request slower than this is counted and logged (slow-query log).
const SLOW_QUERY_NS: u64 = 100_000_000;

/// Socket read timeout used as the poll tick: workers wake this often to
/// check the stop flag while idle at a frame boundary.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Tunable limits for one [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; excess connections are
    /// shed with a typed `Overloaded` error.
    pub max_connections: usize,
    /// How long a peer may stall mid-frame (read) or block a response
    /// (write) before the connection is dropped. Idle waiting *between*
    /// frames is unbounded — this bounds progress, not lifetime.
    pub io_timeout: Duration,
    /// Per-request execution budget: a `Run` past this deadline aborts
    /// with a typed `Timeout` error at the next cooperative check.
    pub request_deadline: Duration,
    /// How long [`Server::shutdown`] waits for in-flight requests before
    /// force-closing their connections.
    pub drain_deadline: Duration,
    /// Slow-query log lines allowed per second (0 disables the log);
    /// excess lines are counted in `server.slow_log_dropped`.
    pub slow_log_per_sec: u32,
    /// Serve reads only: mutating `Run`s are refused with a typed
    /// `ReadOnlyReplica` error. Set on replication replicas, whose
    /// database state is owned by the replayer, not by clients.
    pub read_only: bool,
    /// Per-request result-row budget (`0` = unlimited): a request whose
    /// result outgrows it aborts mid-stream with a typed
    /// `BudgetExceeded` error. One budget spans a whole `RunBatch`.
    pub max_result_rows: u64,
    /// Per-request approximate result-byte budget (`0` = unlimited).
    pub max_result_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 256,
            io_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            slow_log_per_sec: 5,
            read_only: false,
            max_result_rows: 0,
            max_result_bytes: 0,
        }
    }
}

/// Point-in-time resilience counters for one server instance (the same
/// events also feed the process-wide `server.*` obs metrics, which are
/// cumulative across every server in the process).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections refused by admission control.
    pub shed: u64,
    /// `accept()` failures (e.g. EMFILE), each followed by backoff.
    pub accept_errors: u64,
    /// Connections dropped for I/O or protocol failures (clean EOFs are
    /// not counted).
    pub conn_errors: u64,
    /// Connections force-closed because they outlived the drain deadline.
    pub drain_forced: u64,
    /// Requests aborted by the per-request deadline or drain cancel.
    pub deadline_aborts: u64,
    /// Slow-query log lines suppressed by the rate limiter.
    pub slow_log_dropped: u64,
}

#[derive(Default)]
struct StatsCells {
    shed: AtomicU64,
    accept_errors: AtomicU64,
    conn_errors: AtomicU64,
    drain_forced: AtomicU64,
    deadline_aborts: AtomicU64,
    slow_log_dropped: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            shed: self.shed.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            conn_errors: self.conn_errors.load(Ordering::Relaxed),
            drain_forced: self.drain_forced.load(Ordering::Relaxed),
            deadline_aborts: self.deadline_aborts.load(Ordering::Relaxed),
            slow_log_dropped: self.slow_log_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Per-instance counters mirrored into the process-wide obs registry.
struct Telemetry {
    cells: StatsCells,
    requests: Arc<obs::Counter>,
    run_latency: Arc<obs::Histogram>,
    ping_latency: Arc<obs::Histogram>,
    metrics_latency: Arc<obs::Histogram>,
    slow_queries: Arc<obs::Counter>,
    shed: Arc<obs::Counter>,
    accept_errors: Arc<obs::Counter>,
    conn_errors: Arc<obs::Counter>,
    drain_forced: Arc<obs::Counter>,
    deadline_aborts: Arc<obs::Counter>,
    slow_log_dropped: Arc<obs::Counter>,
    active_connections: Arc<obs::Gauge>,
    stale_rejects: Arc<obs::Counter>,
    read_only_rejects: Arc<obs::Counter>,
    writes_fenced: Arc<obs::Counter>,
}

impl Telemetry {
    fn new() -> Telemetry {
        Telemetry {
            cells: StatsCells::default(),
            requests: obs::counter("server.requests"),
            run_latency: obs::histogram("server.request.run.latency_ns"),
            ping_latency: obs::histogram("server.request.ping.latency_ns"),
            metrics_latency: obs::histogram("server.request.metrics.latency_ns"),
            slow_queries: obs::counter("server.slow_queries"),
            shed: obs::counter("server.shed"),
            accept_errors: obs::counter("server.accept_errors"),
            conn_errors: obs::counter("server.conn_errors"),
            drain_forced: obs::counter("server.drain_forced"),
            deadline_aborts: obs::counter("server.deadline_aborts"),
            slow_log_dropped: obs::counter("server.slow_log_dropped"),
            active_connections: obs::gauge("server.active_connections"),
            stale_rejects: obs::counter("server.repl.stale_rejects"),
            read_only_rejects: obs::counter("server.repl.read_only_rejects"),
            writes_fenced: obs::counter("server.writes_fenced"),
        }
    }

    fn stale_reject(&self) {
        self.stale_rejects.inc();
    }

    fn read_only_reject(&self) {
        self.read_only_rejects.inc();
    }

    fn shed(&self) {
        self.cells.shed.fetch_add(1, Ordering::Relaxed);
        self.shed.inc();
    }

    fn accept_error(&self) {
        self.cells.accept_errors.fetch_add(1, Ordering::Relaxed);
        self.accept_errors.inc();
    }

    fn conn_error(&self) {
        self.cells.conn_errors.fetch_add(1, Ordering::Relaxed);
        self.conn_errors.inc();
    }

    fn drain_forced(&self, n: u64) {
        self.cells.drain_forced.fetch_add(n, Ordering::Relaxed);
        self.drain_forced.add(n);
    }

    fn deadline_abort(&self) {
        self.cells.deadline_aborts.fetch_add(1, Ordering::Relaxed);
        self.deadline_aborts.inc();
    }

    fn slow_log_dropped(&self) {
        self.cells.slow_log_dropped.fetch_add(1, Ordering::Relaxed);
        self.slow_log_dropped.inc();
    }
}

/// Token-bucket limiter for the slow-query log: refills `per_sec` tokens
/// per second with a one-second burst, so a pathological workload cannot
/// flood stderr.
struct SlowLogLimiter {
    per_sec: u32,
    state: Mutex<(f64, Instant)>,
}

impl SlowLogLimiter {
    fn new(per_sec: u32) -> SlowLogLimiter {
        SlowLogLimiter {
            per_sec,
            state: Mutex::new((f64::from(per_sec), Instant::now())),
        }
    }

    fn allow(&self) -> bool {
        if self.per_sec == 0 {
            return false;
        }
        let mut state = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let now = Instant::now();
        let refill = now.duration_since(state.1).as_secs_f64() * f64::from(self.per_sec);
        state.0 = (state.0 + refill).min(f64::from(self.per_sec));
        state.1 = now;
        if state.0 >= 1.0 {
            state.0 -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Control-plane hook invoked for [`Request::Promote`]: returns the new
/// epoch on success. Wired by the node role manager (which owns the
/// replayer/shipper the server must not know about).
type PromoteHandler = Box<dyn FnMut() -> io::Result<u64> + Send>;

/// Everything a connection worker needs, shared across workers.
struct ServerShared {
    db: Arc<Aion>,
    stop: AtomicBool,
    queries: AtomicU64,
    tel: Telemetry,
    slow_log: SlowLogLimiter,
    workers: WorkerSet<TcpStream>,
    cfg: ServerConfig,
    addr: SocketAddr,
    /// Live read-only state. Seeded from [`ServerConfig::read_only`] but
    /// consulted per request, so promotion can flip a running replica
    /// into a writable primary without a restart (share the same `Arc`
    /// with the role manager).
    read_only: Arc<AtomicBool>,
    promote: Mutex<Option<PromoteHandler>>,
}

impl ServerShared {
    fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }
}

/// A running Aion server.
pub struct Server {
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    drained: bool,
}

impl Server {
    /// Starts serving `db` on an ephemeral localhost port with default
    /// limits.
    pub fn start(db: Arc<Aion>) -> io::Result<Server> {
        Server::start_with(db, ServerConfig::default())
    }

    /// Starts serving `db` with explicit limits.
    pub fn start_with(db: Arc<Aion>, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let tel = Telemetry::new();
        let workers = WorkerSet::new(tel.active_connections.clone());
        let read_only = Arc::new(AtomicBool::new(cfg.read_only));
        let shared = Arc::new(ServerShared {
            db,
            stop: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            slow_log: SlowLogLimiter::new(cfg.slow_log_per_sec),
            tel,
            workers,
            cfg,
            addr,
            read_only,
            promote: Mutex::new(None),
        });
        let shared2 = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("aion-server-accept".into())
            .spawn(move || accept_loop(&listener, &shared2))?;
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
            drained: false,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Total queries served.
    pub fn query_count(&self) -> u64 {
        self.shared.queries.load(Ordering::Relaxed)
    }

    /// Connections currently being served (tracked workers).
    pub fn active_connections(&self) -> usize {
        self.shared.workers.active()
    }

    /// This instance's resilience counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.tel.cells.snapshot()
    }

    /// The live read-only flag. Share this `Arc` with a node role
    /// manager so promotion flips the running server writable (and a
    /// demotion flips it back) without a restart.
    pub fn read_only_flag(&self) -> Arc<AtomicBool> {
        self.shared.read_only.clone()
    }

    /// Wires the [`Request::Promote`] control operation to `handler`
    /// (typically `ReplNode::promote` in `aion-repl`). Without a handler
    /// the request is refused with a typed error.
    pub fn set_promote_handler(&self, handler: impl FnMut() -> io::Result<u64> + Send + 'static) {
        let mut slot = match self.shared.promote.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *slot = Some(Box::new(handler));
    }

    /// Stops admissions, drains in-flight requests up to the drain
    /// deadline, force-closes stragglers, and joins every thread. After
    /// return the server owns no threads and no sockets.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if self.drained {
            return;
        }
        self.drained = true;
        // Drain: idle workers notice the stop flag within one poll tick;
        // busy workers get until the drain deadline to finish their
        // in-flight request.
        let deadline = Instant::now() + self.shared.cfg.drain_deadline;
        while self.shared.workers.active() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let (handles, forced) = self.shared.workers.force_close_all();
        if forced > 0 {
            self.shared.tel.drain_forced(forced);
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    // Persistent accept failures (EMFILE, ENFILE) must not busy-spin:
    // back off exponentially and recover when accepts succeed again.
    let mut backoff = Duration::from_millis(1);
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(s) => {
                backoff = Duration::from_millis(1);
                s
            }
            Err(_) => {
                shared.tel.accept_error();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
                continue;
            }
        };
        if shared.workers.active() >= shared.cfg.max_connections {
            shed(stream, shared);
            continue;
        }
        // The registry keeps its own handle on the socket so shutdown
        // can force-close it; the worker owns the original.
        let Ok(registered) = stream.try_clone() else {
            shared.tel.conn_error();
            continue;
        };
        let (id, cancel) = shared.workers.register(registered);
        let shared2 = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("aion-server-worker".into())
            .spawn(move || {
                if handle_connection(stream, &shared2, &cancel).is_err() {
                    shared2.tel.conn_error();
                }
                shared2.workers.finish(id);
            });
        match spawned {
            Ok(handle) => shared.workers.set_handle(id, handle),
            Err(_) => {
                shared.workers.finish(id);
                shared.tel.conn_error();
            }
        }
    }
}

/// Admission-control rejection: one typed error frame, then close.
fn shed(mut stream: TcpStream, shared: &ServerShared) {
    shared.tel.shed();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = write_frame(
        &mut stream,
        &encode_response(&Response::Err(WireError::new(
            ErrorCode::Overloaded,
            "server overloaded: connection limit reached",
        ))),
    );
    // Drain whatever request the client already sent before closing.
    // Closing with unread inbound data makes the kernel send RST, which
    // can destroy the rejection frame before the client reads it — the
    // client would then see a raw broken pipe instead of the typed
    // `Overloaded` error it should retry on.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.read(&mut [0u8; 1024]);
    let _ = stream.shutdown(Shutdown::Write);
}

/// Outcome of waiting for one inbound frame.
enum FrameIn {
    Frame(Vec<u8>),
    /// Peer closed cleanly at a frame boundary.
    CleanEof,
    /// The server began draining while this connection was idle.
    Stopped,
    Failed(io::Error),
}

enum ReadOutcome {
    Done,
    CleanEof,
    Stopped,
    Failed(io::Error),
}

/// Fills `buf`, polling on the socket's short read timeout. While no
/// byte has arrived and `idle_at_start` holds, the wait is unbounded but
/// interruptible by `stop`; once any byte arrives, the peer must keep
/// making progress within `io_timeout` or the read fails.
fn poll_read(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    io_timeout: Duration,
    idle_at_start: bool,
) -> ReadOutcome {
    let mut got = 0usize;
    let mut last_progress = Instant::now();
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && idle_at_start {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Failed(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                }
            }
            Ok(n) => {
                got += n;
                last_progress = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 && idle_at_start {
                    if stop.load(Ordering::Acquire) {
                        return ReadOutcome::Stopped;
                    }
                } else if last_progress.elapsed() >= io_timeout {
                    return ReadOutcome::Failed(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return ReadOutcome::Failed(e),
        }
    }
    ReadOutcome::Done
}

/// Reads one length-prefixed frame, distinguishing clean hangups from
/// protocol/IO failures and noticing server drain while idle.
fn read_frame_poll(stream: &mut TcpStream, stop: &AtomicBool, io_timeout: Duration) -> FrameIn {
    let mut header = [0u8; 12];
    match poll_read(stream, &mut header, stop, io_timeout, true) {
        ReadOutcome::Done => {}
        ReadOutcome::CleanEof => return FrameIn::CleanEof,
        ReadOutcome::Stopped => return FrameIn::Stopped,
        ReadOutcome::Failed(e) => return FrameIn::Failed(e),
    }
    let (len, sum) = match parse_frame_header(&header) {
        Ok(parsed) => parsed,
        Err(e) => return FrameIn::Failed(e),
    };
    let mut payload = vec![0u8; len];
    match poll_read(stream, &mut payload, stop, io_timeout, false) {
        ReadOutcome::Done => match verify_frame_checksum(&payload, sum) {
            Ok(()) => FrameIn::Frame(payload),
            Err(e) => FrameIn::Failed(e),
        },
        ReadOutcome::CleanEof | ReadOutcome::Stopped => FrameIn::Failed(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        )),
        ReadOutcome::Failed(e) => FrameIn::Failed(e),
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Maps an execution failure to its typed wire error, counting deadline
/// aborts. Shared by `Run`, paged `Run`, and `RunBatch` statements.
fn exec_error_to_wire(shared: &ServerShared, e: lpg::GraphError) -> WireError {
    match e {
        lpg::GraphError::DeadlineExceeded => {
            shared.tel.deadline_abort();
            if shared.stop.load(Ordering::Acquire) {
                WireError::new(ErrorCode::ShuttingDown, "request aborted by server drain")
            } else {
                WireError::new(
                    ErrorCode::Timeout,
                    format!(
                        "request deadline exceeded ({} ms)",
                        shared.cfg.request_deadline.as_millis()
                    ),
                )
            }
        }
        lpg::GraphError::BudgetExceeded => WireError::new(
            ErrorCode::BudgetExceeded,
            "result exceeded the row/byte budget; page or narrow the query",
        ),
        lpg::GraphError::CursorInvalid(msg) => {
            WireError::new(ErrorCode::CursorInvalid, format!("invalid cursor: {msg}"))
        }
        e @ lpg::GraphError::Fenced { .. } => {
            shared.tel.writes_fenced.inc();
            WireError::new(ErrorCode::Fenced, e.to_string())
        }
        e => WireError::generic(e.to_string()),
    }
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &ServerShared,
    cancel: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(shared.cfg.io_timeout))?;
    loop {
        let frame = match read_frame_poll(&mut stream, &shared.stop, shared.cfg.io_timeout) {
            FrameIn::Frame(f) => f,
            FrameIn::CleanEof | FrameIn::Stopped => return Ok(()),
            FrameIn::Failed(e) => return Err(e),
        };
        // A stop request (from any connection) drains live workers: refuse
        // further work instead of silently serving a half-down server.
        if shared.stop.load(Ordering::Acquire) {
            let _ = write_frame(
                &mut stream,
                &encode_response(&Response::Err(WireError::new(
                    ErrorCode::ShuttingDown,
                    "server is shutting down",
                ))),
            );
            return Ok(());
        }
        shared.tel.requests.inc();
        let started = Instant::now();
        let response = match decode_request(&frame) {
            Ok(Request::Ping) => {
                let r = Response::Ok {
                    result: query::QueryResult {
                        columns: vec!["pong".into()],
                        rows: vec![],
                    },
                    watermark: shared.db.latest_ts(),
                    cursor: None,
                };
                shared.tel.ping_latency.record(elapsed_ns(started));
                r
            }
            Ok(Request::Metrics) => {
                let r = Response::Metrics(obs::snapshot());
                shared.tel.metrics_latency.record(elapsed_ns(started));
                r
            }
            Ok(Request::Status) => Response::Status {
                // `max_seen` is the node's effective epoch: for the
                // acting primary it equals the held epoch; for a deposed
                // one it is the newer epoch that fenced it — either way
                // the highest-epoch writable node is the true primary.
                epoch: shared.db.max_seen_epoch(),
                read_only: shared.is_read_only(),
                fenced: shared.db.is_fenced(),
                latest_ts: shared.db.latest_ts(),
            },
            Ok(Request::Promote) => {
                let mut slot = match shared.promote.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                match slot.as_mut() {
                    None => Response::Err(WireError::generic(
                        "this node has no promote handler (not running under a role manager)",
                    )),
                    Some(handler) => match handler() {
                        Ok(epoch) => Response::Ok {
                            result: query::QueryResult {
                                columns: vec!["epoch".into()],
                                rows: vec![vec![query::Value::Int(
                                    i64::try_from(epoch).unwrap_or(i64::MAX),
                                )]],
                            },
                            watermark: shared.db.latest_ts(),
                            cursor: None,
                        },
                        Err(e) => {
                            Response::Err(WireError::generic(format!("promotion failed: {e}")))
                        }
                    },
                }
            }
            Ok(Request::Shutdown) => {
                shared.stop.store(true, Ordering::Release);
                write_frame(
                    &mut stream,
                    &encode_response(&Response::Ok {
                        result: query::QueryResult {
                            columns: vec![],
                            rows: vec![],
                        },
                        watermark: shared.db.latest_ts(),
                        cursor: None,
                    }),
                )?;
                // The accept thread blocks in `incoming()` and only checks
                // the stop flag after a connection arrives; without a wake
                // the listener would linger until the next organic connect.
                let _ = TcpStream::connect(shared.addr);
                return Ok(());
            }
            Ok(Request::Run {
                query,
                params,
                min_watermark,
                page_size,
                cursor,
            }) => {
                shared.queries.fetch_add(1, Ordering::Relaxed);
                let params: Params = params.into_iter().collect();
                let budget = ExecBudget::with_deadline(
                    Some(started + shared.cfg.request_deadline),
                    Some(cancel.clone()),
                )
                .with_result_caps(shared.cfg.max_result_rows, shared.cfg.max_result_bytes);
                // Staleness gate: refuse before executing so a client with
                // a read-your-writes floor never sees pre-floor state. The
                // check is conservative — replay may advance concurrently —
                // but a watermark can only grow, never shrink.
                let watermark = shared.db.latest_ts();
                if min_watermark > watermark {
                    shared.tel.stale_reject();
                    let r = Response::Err(WireError::new(
                        ErrorCode::StaleReplica,
                        format!("replica watermark {watermark} behind requested {min_watermark}"),
                    ));
                    write_frame(&mut stream, &encode_response(&r))?;
                    continue;
                }
                // A resumed cursor pins a snapshot timestamp; a node whose
                // replay watermark is behind it cannot serve that page yet.
                // Same bounded-staleness contract as `min_watermark`, so
                // cursors roam across replicas safely. (A token that fails
                // to decode falls through to execution for its typed
                // CursorInvalid rejection.)
                if let Some(pinned) = cursor
                    .as_deref()
                    .and_then(|c| query::peek_snapshot_ts(c).ok())
                {
                    if pinned > watermark {
                        shared.tel.stale_reject();
                        let r = Response::Err(WireError::new(
                            ErrorCode::StaleReplica,
                            format!(
                                "replica watermark {watermark} behind cursor snapshot {pinned}"
                            ),
                        ));
                        write_frame(&mut stream, &encode_response(&r))?;
                        continue;
                    }
                }
                if shared.is_read_only() && !crate::client::query_is_read_only(&query) {
                    shared.tel.read_only_reject();
                    let r = Response::Err(WireError::new(
                        ErrorCode::ReadOnlyReplica,
                        "replica is read-only; route writes to the primary",
                    ));
                    write_frame(&mut stream, &encode_response(&r))?;
                    continue;
                }
                let paged = page_size > 0 || cursor.is_some();
                let r = if paged {
                    // page_size 0 with a cursor means "the rest, unpaged".
                    let take = if page_size == 0 {
                        usize::MAX
                    } else {
                        page_size as usize
                    };
                    match query::execute_paged(
                        &shared.db,
                        &query,
                        &params,
                        budget,
                        take,
                        cursor.as_deref(),
                    ) {
                        Ok(page) => Response::Ok {
                            result: page.result,
                            watermark: shared.db.latest_ts(),
                            cursor: page.cursor,
                        },
                        Err(e) => Response::Err(exec_error_to_wire(shared, e)),
                    }
                } else {
                    match query::execute_with_budget(&shared.db, &query, &params, budget) {
                        Ok(result) => Response::Ok {
                            result,
                            watermark: shared.db.latest_ts(),
                            cursor: None,
                        },
                        Err(e) => Response::Err(exec_error_to_wire(shared, e)),
                    }
                };
                let elapsed = elapsed_ns(started);
                shared.tel.run_latency.record(elapsed);
                if elapsed > SLOW_QUERY_NS {
                    shared.tel.slow_queries.inc();
                    if shared.slow_log.allow() {
                        let preview: String = query.chars().take(200).collect();
                        eprintln!(
                            "[aion-server] slow query ({} ms): {preview}",
                            elapsed / 1_000_000
                        );
                    } else {
                        shared.tel.slow_log_dropped();
                    }
                }
                r
            }
            Ok(Request::RunBatch {
                statements,
                min_watermark,
            }) => {
                shared
                    .queries
                    .fetch_add(statements.len() as u64, Ordering::Relaxed);
                // One budget spans the whole batch: a pipelined frame must
                // not multiply the per-request deadline by its length, and
                // the row/byte caps apply to the batch's combined result
                // (clones share spending).
                let budget = ExecBudget::with_deadline(
                    Some(started + shared.cfg.request_deadline),
                    Some(cancel.clone()),
                )
                .with_result_caps(shared.cfg.max_result_rows, shared.cfg.max_result_bytes);
                // The staleness gate applies to the batch as a whole (one
                // floor, checked once, same conservatism as Run).
                let watermark = shared.db.latest_ts();
                if min_watermark > watermark {
                    shared.tel.stale_reject();
                    let r = Response::Err(WireError::new(
                        ErrorCode::StaleReplica,
                        format!("replica watermark {watermark} behind requested {min_watermark}"),
                    ));
                    write_frame(&mut stream, &encode_response(&r))?;
                    continue;
                }
                let mut results = Vec::with_capacity(statements.len());
                for (query, params) in statements {
                    // Read-only replicas gate per statement: reads in a
                    // mixed batch still execute, each write gets its own
                    // typed refusal.
                    if shared.is_read_only() && !crate::client::query_is_read_only(&query) {
                        shared.tel.read_only_reject();
                        results.push(Err(WireError::new(
                            ErrorCode::ReadOnlyReplica,
                            "replica is read-only; route writes to the primary",
                        )));
                        continue;
                    }
                    let params: Params = params.into_iter().collect();
                    match query::execute_with_budget(&shared.db, &query, &params, budget.clone()) {
                        Ok(result) => results.push(Ok(result)),
                        Err(e) => results.push(Err(exec_error_to_wire(shared, e))),
                    }
                }
                shared.tel.run_latency.record(elapsed_ns(started));
                Response::Batch {
                    results,
                    watermark: shared.db.latest_ts(),
                }
            }
            Err(e) => {
                // A framing/decode failure means the byte stream can no
                // longer be trusted (e.g. corruption): answer once, then
                // close instead of resynchronising on garbage.
                shared.tel.conn_error();
                let _ = write_frame(
                    &mut stream,
                    &encode_response(&Response::Err(WireError::generic(format!(
                        "protocol error: {e}"
                    )))),
                );
                return Ok(());
            }
        };
        write_frame(&mut stream, &encode_response(&response))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_log_limiter_caps_rate() {
        let limiter = SlowLogLimiter::new(2);
        // The bucket starts full: two lines pass, the third is dropped.
        assert!(limiter.allow());
        assert!(limiter.allow());
        assert!(!limiter.allow());
        // Zero disables the log entirely.
        let off = SlowLogLimiter::new(0);
        assert!(!off.allow());
    }

    #[test]
    fn worker_set_tracks_registration_and_finish() {
        let ws = WorkerSet::new(obs::gauge("server.test.active"));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sock = TcpStream::connect(addr).unwrap();
        let (id, cancel) = ws.register(sock.try_clone().unwrap());
        assert_eq!(ws.active(), 1);
        assert!(!cancel.load(Ordering::Relaxed));
        ws.finish(id);
        assert_eq!(ws.active(), 0);
        // Finishing twice or force-closing an empty set is harmless.
        ws.finish(id);
        let (handles, forced) = ws.force_close_all();
        assert!(handles.is_empty());
        assert_eq!(forced, 0);
    }
}
