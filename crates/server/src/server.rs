//! The TCP server: accept loop + one worker thread per connection, all
//! executing against a shared [`aion::Aion`].

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response,
};
use aion::Aion;
use query::Params;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A `Run` request slower than this is counted and logged (slow-query log).
const SLOW_QUERY_NS: u64 = 100_000_000;

struct Metrics {
    requests: Arc<obs::Counter>,
    run_latency: Arc<obs::Histogram>,
    ping_latency: Arc<obs::Histogram>,
    metrics_latency: Arc<obs::Histogram>,
    slow_queries: Arc<obs::Counter>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            requests: obs::counter("server.requests"),
            run_latency: obs::histogram("server.request.run.latency_ns"),
            ping_latency: obs::histogram("server.request.ping.latency_ns"),
            metrics_latency: obs::histogram("server.request.metrics.latency_ns"),
            slow_queries: obs::counter("server.slow_queries"),
        }
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A running Aion server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    queries: Arc<AtomicU64>,
}

impl Server {
    /// Starts serving `db` on an ephemeral localhost port.
    pub fn start(db: Arc<Aion>) -> io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queries = Arc::new(AtomicU64::new(0));
        let stop2 = stop.clone();
        let queries2 = queries.clone();
        let accept_thread = std::thread::Builder::new()
            .name("aion-server-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let db = db.clone();
                    let stop = stop2.clone();
                    let queries = queries2.clone();
                    // Workers are detached: they exit when their client
                    // disconnects. Joining them here would deadlock a
                    // shutdown while any client holds an open connection.
                    let _ = std::thread::Builder::new()
                        .name("aion-server-worker".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &db, &stop, &queries, addr);
                        });
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            queries,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total queries served.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Stops accepting connections and joins the accept loop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    db: &Aion,
    stop: &AtomicBool,
    queries: &AtomicU64,
    addr: SocketAddr,
) -> io::Result<()> {
    let metrics = Metrics::new();
    stream.set_nodelay(true)?;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return Ok(()), // client hung up
        };
        // A stop request (from any connection) drains live workers: refuse
        // further work instead of silently serving a half-down server.
        if stop.load(Ordering::Acquire) {
            let _ = write_frame(
                &mut stream,
                &encode_response(&Response::Err("server is shutting down".into())),
            );
            return Ok(());
        }
        metrics.requests.inc();
        let started = Instant::now();
        let response = match decode_request(&frame) {
            Ok(Request::Ping) => {
                let r = Response::Ok(query::QueryResult {
                    columns: vec!["pong".into()],
                    rows: vec![],
                });
                metrics.ping_latency.record(elapsed_ns(started));
                r
            }
            Ok(Request::Metrics) => {
                let r = Response::Metrics(obs::snapshot());
                metrics.metrics_latency.record(elapsed_ns(started));
                r
            }
            Ok(Request::Shutdown) => {
                stop.store(true, Ordering::Release);
                write_frame(
                    &mut stream,
                    &encode_response(&Response::Ok(query::QueryResult {
                        columns: vec![],
                        rows: vec![],
                    })),
                )?;
                // The accept thread blocks in `incoming()` and only checks
                // the stop flag after a connection arrives; without a wake
                // the listener would linger until the next organic connect.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            Ok(Request::Run { query, params }) => {
                queries.fetch_add(1, Ordering::Relaxed);
                let params: Params = params.into_iter().collect();
                let r = match query::execute(db, &query, &params) {
                    Ok(result) => Response::Ok(result),
                    Err(e) => Response::Err(e.to_string()),
                };
                let elapsed = elapsed_ns(started);
                metrics.run_latency.record(elapsed);
                if elapsed > SLOW_QUERY_NS {
                    metrics.slow_queries.inc();
                    let preview: String = query.chars().take(200).collect();
                    eprintln!(
                        "[aion-server] slow query ({} ms): {preview}",
                        elapsed / 1_000_000
                    );
                }
                r
            }
            Err(e) => Response::Err(format!("protocol error: {e}")),
        };
        write_frame(&mut stream, &encode_response(&response))?;
    }
}
