//! The TCP server: accept loop + one worker thread per connection, all
//! executing against a shared [`aion::Aion`].

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response,
};
use aion::Aion;
use query::Params;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running Aion server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    queries: Arc<AtomicU64>,
}

impl Server {
    /// Starts serving `db` on an ephemeral localhost port.
    pub fn start(db: Arc<Aion>) -> io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queries = Arc::new(AtomicU64::new(0));
        let stop2 = stop.clone();
        let queries2 = queries.clone();
        let accept_thread = std::thread::Builder::new()
            .name("aion-server-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let db = db.clone();
                    let stop = stop2.clone();
                    let queries = queries2.clone();
                    // Workers are detached: they exit when their client
                    // disconnects. Joining them here would deadlock a
                    // shutdown while any client holds an open connection.
                    let _ = std::thread::Builder::new()
                        .name("aion-server-worker".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &db, &stop, &queries);
                        });
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            queries,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total queries served.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Stops accepting connections and joins the accept loop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    db: &Aion,
    stop: &AtomicBool,
    queries: &AtomicU64,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return Ok(()), // client hung up
        };
        let response = match decode_request(&frame) {
            Ok(Request::Ping) => Response::Ok(query::QueryResult {
                columns: vec!["pong".into()],
                rows: vec![],
            }),
            Ok(Request::Shutdown) => {
                stop.store(true, Ordering::Release);
                write_frame(
                    &mut stream,
                    &encode_response(&Response::Ok(query::QueryResult {
                        columns: vec![],
                        rows: vec![],
                    })),
                )?;
                return Ok(());
            }
            Ok(Request::Run { query, params }) => {
                queries.fetch_add(1, Ordering::Relaxed);
                let params: Params = params.into_iter().collect();
                match query::execute(db, &query, &params) {
                    Ok(result) => Response::Ok(result),
                    Err(e) => Response::Err(e.to_string()),
                }
            }
            Err(e) => Response::Err(format!("protocol error: {e}")),
        };
        write_frame(&mut stream, &encode_response(&response))?;
    }
}
