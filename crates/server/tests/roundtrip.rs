//! Client/server integration: Cypher over the wire, concurrent clients,
//! error propagation, shutdown.

use aion::{Aion, AionConfig};
use aion_server::{Client, Server};
use query::Value;
use std::sync::Arc;
use tempfile::tempdir;

fn start() -> (tempfile::TempDir, Arc<Aion>, Server) {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let server = Server::start(db.clone()).unwrap();
    (dir, db, server)
}

#[test]
fn query_over_the_wire() {
    let (_d, db, server) = start();
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    client
        .run("CREATE (n:Person {_id: 1, name: 'ada'})", vec![])
        .unwrap();
    client.run("CREATE (n:Person {_id: 2})", vec![]).unwrap();
    db.lineage_barrier(db.latest_ts());
    let r = client
        .run(
            "MATCH (n) WHERE id(n) = $id RETURN n.name",
            vec![("id".into(), Value::Int(1))],
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Str("ada".into())]]);
    let r = client
        .run("MATCH (n:Person) RETURN count(n)", vec![])
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    assert!(server.query_count() >= 4);
}

#[test]
fn errors_propagate_without_closing_connection() {
    let (_d, _db, server) = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.run("THIS IS NOT CYPHER", vec![]).unwrap_err();
    assert!(err.to_string().contains("parse") || err.to_string().contains("unknown"));
    // Connection still usable.
    client.run("CREATE (n {_id: 5})", vec![]).unwrap();
    let r = client
        .run("MATCH (n) WHERE id(n) = 5 RETURN id(n)", vec![])
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(5)]]);
}

#[test]
fn run_batch_pipelines_statements_in_one_frame() {
    let (_d, db, server) = start();
    let mut client = Client::connect(server.addr()).unwrap();
    // Writes, a failing statement mid-batch, then reads — all one frame.
    let (results, watermark) = client
        .run_batch(
            vec![
                ("CREATE (n:Person {_id: 1, name: 'ada'})".into(), vec![]),
                ("CREATE (n:Person {_id: 2})".into(), vec![]),
                ("THIS IS NOT CYPHER".into(), vec![]),
                (
                    "MATCH (n) WHERE id(n) = $id RETURN n.name".into(),
                    vec![("id".into(), Value::Int(1))],
                ),
            ],
            0,
        )
        .unwrap();
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok());
    assert!(results[1].is_ok());
    // The parse error is per-statement; the batch keeps going.
    assert!(results[2].is_err());
    let read = results[3].as_ref().unwrap();
    assert_eq!(read.rows, vec![vec![Value::Str("ada".into())]]);
    assert!(watermark >= 2, "watermark reflects the batch's own writes");
    // The writes are visible to later requests on the same connection.
    db.lineage_barrier(db.latest_ts());
    let r = client
        .run("MATCH (n:Person) RETURN count(n)", vec![])
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    // Each batched statement counts toward the query counter.
    assert!(server.query_count() >= 5);
    // An empty batch is a no-op that still answers.
    let (results, _) = client.run_batch(vec![], 0).unwrap();
    assert!(results.is_empty());
}

#[test]
fn concurrent_clients() {
    let (_d, db, server) = start();
    // Seed.
    {
        let mut c = Client::connect(server.addr()).unwrap();
        for i in 0..20 {
            c.run(
                &format!("CREATE (n:Person {{_id: {i}, v: {}}})", i + 1),
                vec![],
            )
            .unwrap();
        }
        db.lineage_barrier(db.latest_ts());
    }
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut sum = 0i64;
                for i in 0..50 {
                    let id = (t * 7 + i) % 20;
                    let r = c
                        .run(
                            "MATCH (n) WHERE id(n) = $id RETURN n.v",
                            vec![("id".into(), Value::Int(id))],
                        )
                        .unwrap();
                    sum += r.rows[0][0].as_int().unwrap();
                }
                sum
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
    assert!(server.query_count() >= 220);
}

#[test]
fn shutdown_stops_accepting() {
    let (_d, _db, mut server) = start();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
    // New connections are refused or die immediately.
    let still_up = Client::connect(addr).and_then(|mut c| c.ping()).is_ok();
    assert!(!still_up, "server should not serve after shutdown");
}
