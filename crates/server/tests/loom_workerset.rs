//! Model tests for the worker registry's shutdown races.
//!
//! The interesting interleavings: a worker finishing concurrently with
//! `force_close_all`, and a late `set_handle` racing shutdown. Written
//! against the loom API (vendored shim = bounded seeded stress model,
//! see shims/README.md); fake connection handles stand in for sockets.

use aion_server::workers::{ConnHandle, WorkerSet};
use loom::thread;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Fake connection recording force-closes.
struct FakeConn {
    closed: Arc<AtomicBool>,
}

impl ConnHandle for FakeConn {
    fn force_close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }
}

/// N workers race their own `finish` against one `force_close_all`.
/// Whatever the interleaving, every worker is accounted for exactly
/// once (finished or forced), the set drains to zero, and the gauge
/// ends at zero.
#[test]
fn finish_races_force_close_without_losing_workers() {
    static RUN: AtomicU64 = AtomicU64::new(0);
    loom::model(|| {
        // Unique gauge per iteration: the global registry outlives runs.
        let run = RUN.fetch_add(1, Ordering::SeqCst);
        let gauge = obs::gauge(&format!("server.loomtest.finish_race.{run}"));
        let ws: Arc<WorkerSet<FakeConn>> = Arc::new(WorkerSet::new(gauge.clone()));

        const N: u64 = 3;
        let finished = Arc::new(AtomicU64::new(0));
        let mut ids = Vec::new();
        for _ in 0..N {
            let closed = Arc::new(AtomicBool::new(false));
            let (id, _cancel) = ws.register(FakeConn { closed });
            ids.push(id);
        }

        let mut handles = Vec::new();
        for id in ids {
            let ws = ws.clone();
            let finished = finished.clone();
            handles.push(thread::spawn(move || {
                thread::yield_now();
                ws.finish(id);
                finished.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let closer = {
            let ws = ws.clone();
            thread::spawn(move || {
                thread::yield_now();
                let (_join, forced) = ws.force_close_all();
                forced
            })
        };

        for h in handles {
            h.join().expect("worker thread");
        }
        let forced = closer.join().expect("closer thread");

        // `finish` after the drain is a no-op, so finished counts all N
        // workers while `forced` counts only those the closer caught —
        // the two observations can overlap but nothing is lost:
        assert_eq!(finished.load(Ordering::SeqCst), N);
        assert!(forced <= N, "forced {forced} out of {N}");
        assert_eq!(ws.active(), 0);
        assert_eq!(gauge.get(), 0);
    });
}

/// Every worker still registered at shutdown gets its cancel flag set
/// and its connection force-closed.
#[test]
fn survivors_are_cancelled_and_closed() {
    static RUN: AtomicU64 = AtomicU64::new(0);
    loom::model(|| {
        let run = RUN.fetch_add(1, Ordering::SeqCst);
        let gauge = obs::gauge(&format!("server.loomtest.survivors.{run}"));
        let ws: Arc<WorkerSet<FakeConn>> = Arc::new(WorkerSet::new(gauge));

        let closed_a = Arc::new(AtomicBool::new(false));
        let closed_b = Arc::new(AtomicBool::new(false));
        let (ida, cancel_a) = ws.register(FakeConn {
            closed: closed_a.clone(),
        });
        let (_idb, cancel_b) = ws.register(FakeConn {
            closed: closed_b.clone(),
        });

        // A finishes cleanly in parallel with shutdown; B never does.
        let finisher = {
            let ws = ws.clone();
            thread::spawn(move || {
                thread::yield_now();
                ws.finish(ida);
            })
        };
        let (_join, forced) = ws.force_close_all();
        finisher.join().expect("finisher");

        // B was still registered, so it must be cancelled and closed.
        assert!(cancel_b.load(Ordering::SeqCst));
        assert!(closed_b.load(Ordering::SeqCst));
        assert!(forced >= 1, "B must be forced");
        // A is only cancelled if the closer won the race.
        assert_eq!(
            cancel_a.load(Ordering::SeqCst),
            closed_a.load(Ordering::SeqCst)
        );
        assert_eq!(ws.active(), 0);
    });
}

/// `set_handle` racing a completed worker: the late handle attach hits
/// an already-removed entry and is dropped, never resurrected.
#[test]
fn late_set_handle_does_not_resurrect_finished_worker() {
    static RUN: AtomicU64 = AtomicU64::new(0);
    loom::model(|| {
        let run = RUN.fetch_add(1, Ordering::SeqCst);
        let gauge = obs::gauge(&format!("server.loomtest.late_handle.{run}"));
        let ws: Arc<WorkerSet<FakeConn>> = Arc::new(WorkerSet::new(gauge));

        let (id, _cancel) = ws.register(FakeConn {
            closed: Arc::new(AtomicBool::new(false)),
        });

        // The "worker" finishes immediately on its own thread…
        let worker = {
            let ws = ws.clone();
            thread::spawn(move || {
                ws.finish(id);
            })
        };
        // …while the acceptor attaches a placeholder thread handle.
        let placeholder = thread::spawn(|| {});
        ws.set_handle(id, placeholder);
        worker.join().expect("worker");

        assert_eq!(ws.active(), 0, "late set_handle must not re-insert");
        let (joins, forced) = ws.force_close_all();
        assert_eq!(forced, 0);
        for j in joins {
            j.join().expect("placeholder join");
        }
    });
}
