//! Result-budget enforcement at the wire: a `BudgetExceeded` abort is a
//! typed per-request failure, never a wedged connection or a leaked
//! pinned stream, and it composes with the request deadline inside one
//! batch. Paging is the sanctioned escape hatch under the same caps.

use aion::{Aion, AionConfig};
use aion_server::{Client, ClientConfig, Server, ServerConfig};
use std::io::ErrorKind;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempfile::{tempdir, TempDir};

fn test_server(cfg: ServerConfig) -> (TempDir, Arc<Aion>, Server) {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let server = Server::start_with(db.clone(), cfg).unwrap();
    (dir, db, server)
}

fn no_retry() -> ClientConfig {
    ClientConfig {
        retries: 0,
        request_timeout: Duration::from_secs(20),
        ..ClientConfig::default()
    }
}

fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn seed(client: &mut Client, n: u64) {
    for i in 0..n {
        client
            .run(&format!("CREATE (x:Item {{_id: {i}}})"), Vec::new())
            .unwrap();
    }
}

#[test]
fn budget_exceeded_mid_stream_neither_wedges_nor_leaks() {
    let (_dir, db, server) = test_server(ServerConfig {
        max_result_rows: 5,
        ..ServerConfig::default()
    });
    let mut client = Client::connect_with(server.addr(), no_retry()).unwrap();
    seed(&mut client, 40);
    db.lineage_barrier(db.latest_ts());

    let open_streams = obs::gauge("core.stream.open");

    // The full scan trips the row cap mid-stream with a typed error…
    let err = client.run("MATCH (n) RETURN n", Vec::new()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::OutOfMemory, "got: {err}");
    assert!(
        err.to_string().contains("budget"),
        "error should name the budget, got: {err}"
    );

    // …but the request was aborted, not the connection: the same client
    // keeps working without reconnecting.
    client.ping().unwrap();
    assert_eq!(client.reconnect_count(), 0);
    let small = client
        .run("MATCH (n) WHERE id(n) = 0 RETURN n", Vec::new())
        .unwrap();
    assert_eq!(small.rows.len(), 1);

    // Paging is the sanctioned way out: every page fits the same cap, so
    // the identical scan drains completely, page by page.
    let mut rows = 0usize;
    for page in client.pages("MATCH (n) RETURN n", Vec::new(), 4) {
        rows += page.unwrap().rows.len();
    }
    assert_eq!(rows, 40);

    // No pinned stream leaked from the aborted request, and dropping the
    // client releases the connection.
    assert!(
        wait_for(Duration::from_secs(5), || open_streams.get() == 0),
        "aborted scan leaked a pinned stream: {}",
        open_streams.get()
    );
    let baseline = server.active_connections();
    drop(client);
    assert!(
        wait_for(Duration::from_secs(5), || {
            server.active_connections() < baseline
        }),
        "connection not released after client drop"
    );
}

#[test]
fn row_budget_and_deadline_compose_in_one_batch() {
    let (_dir, db, server) = test_server(ServerConfig {
        max_result_rows: 3,
        request_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut client = Client::connect_with(server.addr(), no_retry()).unwrap();
    seed(&mut client, 12);
    db.lineage_barrier(db.latest_ts());

    // One request, both limits: the scan overruns the row budget, the
    // sleep overruns the deadline — each statement gets its own typed
    // error and neither aborts the batch bookkeeping.
    let started = Instant::now();
    let (results, _watermark) = client
        .run_batch(
            vec![
                ("MATCH (n) RETURN n".to_string(), Vec::new()),
                ("CALL aion.sleep(10000)".to_string(), Vec::new()),
            ],
            0,
        )
        .unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "batch must abort near the deadline, not sleep it out"
    );
    assert_eq!(results.len(), 2);
    let budget_err = results[0].as_ref().unwrap_err();
    assert_eq!(
        budget_err.kind(),
        ErrorKind::OutOfMemory,
        "got: {budget_err}"
    );
    let deadline_err = results[1].as_ref().unwrap_err();
    assert_eq!(
        deadline_err.kind(),
        ErrorKind::TimedOut,
        "got: {deadline_err}"
    );
    assert!(
        deadline_err.to_string().contains("deadline"),
        "got: {deadline_err}"
    );

    // The connection survives the double abort.
    client.ping().unwrap();
    assert_eq!(client.reconnect_count(), 0);
}
