//! Property tests on the wire codec: round-trips, strict-prefix rejection
//! (a short read can never decode as a complete message), and panic
//! freedom on arbitrary malformed frames.

use aion_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request, Response,
    WireError,
};
use obs::{HistogramSnapshot, MetricsSnapshot};
use proptest::prelude::*;
use query::{QueryResult, Value};

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 0..12).prop_map(|v| {
        v.into_iter()
            .map(|b| char::from(b'a' + (b % 26)))
            .collect::<String>()
    })
}

fn scalar_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        name_strategy().prop_map(Value::Str),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        scalar_strategy().boxed(),
        proptest::collection::vec(scalar_strategy(), 0..4)
            .prop_map(Value::List)
            .boxed(),
        (
            any::<u64>(),
            proptest::collection::vec(name_strategy(), 0..3),
            proptest::collection::vec((name_strategy(), scalar_strategy()), 0..3),
            proptest::option::of((0u64..100, 100u64..200)),
        )
            .prop_map(|(id, labels, props, valid)| Value::Node {
                id,
                labels,
                props,
                valid,
            })
            .boxed(),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Shutdown),
        Just(Request::Metrics),
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), value_strategy()), 0..4),
            any::<u64>(),
            any::<u32>(),
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
        )
            .prop_map(
                |(query, params, min_watermark, page_size, cursor)| Request::Run {
                    query,
                    params,
                    min_watermark,
                    page_size,
                    cursor,
                }
            ),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        (name_strategy(), 0u8..4).prop_map(|(message, code)| {
            let code = match code {
                1 => ErrorCode::Timeout,
                2 => ErrorCode::Overloaded,
                3 => ErrorCode::ShuttingDown,
                _ => ErrorCode::Generic,
            };
            Response::Err(WireError::new(code, message))
        }),
        (
            proptest::collection::vec(name_strategy(), 1..4),
            proptest::collection::vec(value_strategy(), 0..9),
            any::<u64>(),
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
        )
            .prop_map(|(columns, cells, watermark, cursor)| {
                let rows = cells
                    .chunks_exact(columns.len())
                    .map(|c| c.to_vec())
                    .collect();
                Response::Ok {
                    result: QueryResult { columns, rows },
                    watermark,
                    cursor,
                }
            }),
        (
            proptest::collection::vec((name_strategy(), any::<u64>()), 0..4),
            proptest::collection::vec((name_strategy(), any::<i64>()), 0..4),
            proptest::collection::vec(
                (name_strategy(), any::<u64>(), any::<u64>(), any::<u64>()),
                0..4,
            ),
        )
            .prop_map(|(counters, gauges, hists)| {
                let histograms = hists
                    .into_iter()
                    .map(|(name, count, sum, p)| HistogramSnapshot {
                        name,
                        count,
                        sum,
                        p50: p,
                        p95: p,
                        p99: p,
                    })
                    .collect();
                Response::Metrics(MetricsSnapshot {
                    counters,
                    gauges,
                    histograms,
                })
            }),
    ]
}

proptest! {
    #[test]
    fn request_roundtrips(req in request_strategy()) {
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn response_roundtrips(resp in response_strategy()) {
        let bytes = encode_response(&resp);
        prop_assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    /// A short read (any strict prefix of a valid frame) must fail to
    /// decode rather than silently yielding a partial message: every field
    /// read is fixed-size or length-prefixed, so truncation always lands
    /// inside some read.
    #[test]
    fn truncated_requests_rejected(req in request_strategy(), cut in 0usize..64) {
        let bytes = encode_request(&req);
        if !bytes.is_empty() {
            let len = cut % bytes.len();
            prop_assert!(decode_request(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn truncated_responses_rejected(resp in response_strategy(), cut in 0usize..256) {
        let bytes = encode_response(&resp);
        if !bytes.is_empty() {
            let len = cut % bytes.len();
            prop_assert!(decode_response(&bytes[..len]).is_err());
        }
    }

    /// Arbitrary malformed frames must produce `Err`, never a panic or
    /// unbounded work (e.g. a row count with no columns to bound it).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }
}
