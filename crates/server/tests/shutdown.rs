//! Client-initiated shutdown: the stop request must wake the blocked
//! accept loop (not just set the flag), and workers serving other live
//! connections must stop taking new work.

use aion::{Aion, AionConfig};
use aion_server::{Client, Server};
use std::sync::Arc;
use std::time::Duration;
use tempfile::tempdir;

#[test]
fn client_shutdown_wakes_accept_loop_and_drains_workers() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let server = Server::start(db.clone()).unwrap();
    let addr = server.addr();

    // Two live connections: one will issue the shutdown, the other must
    // observe it on its next request instead of being served forever.
    let mut bystander = Client::connect(addr).unwrap();
    bystander.ping().unwrap();
    let mut instigator = Client::connect(addr).unwrap();
    instigator.shutdown_server().unwrap();

    // The bystander's connection is still open, but its worker checks the
    // stop flag between requests: the next request is refused. This makes
    // no new connection, so it cannot accidentally wake the accept loop.
    // Ping is idempotent, so the client may retry by reconnecting: any
    // retry lands after the listener went down and fails with a
    // connect-class error instead of the typed shutting-down response.
    let err = bystander.ping().unwrap_err();
    assert!(
        err.to_string().contains("shutting down")
            || matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::TimedOut
            ),
        "live connection must be refused after shutdown, got: {err}"
    );

    // The accept thread was blocked in `incoming()` when the shutdown
    // arrived over the wire. The handler wakes it with a throwaway
    // connection; without that wake the listener would linger and serve
    // this connect. One second is generous for the wake to land.
    std::thread::sleep(Duration::from_secs(1));
    let served = Client::connect(addr).and_then(|mut c| c.ping()).is_ok();
    assert!(
        !served,
        "listener must go down after client-initiated shutdown without further connections"
    );

    // Dropping the handle after a wire-initiated shutdown stays prompt.
    drop(server);
}
