//! Resilience-layer integration tests: per-request deadlines, admission
//! control, graceful drain vs. force-close, idempotency-gated client
//! retries, and connection-error classification.
//!
//! Every test that could hang funnels its result through an mpsc channel
//! with a `recv_timeout`, so a regression shows up as a test failure
//! rather than a stuck CI job.

use aion::{Aion, AionConfig};
use aion_server::protocol::{
    decode_response, encode_response, read_frame, write_frame, ErrorCode, Response,
};
use aion_server::{Client, ClientConfig, Server, ServerConfig};
use std::io::{ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tempfile::{tempdir, TempDir};

fn test_server(cfg: ServerConfig) -> (TempDir, Arc<Aion>, Server) {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let server = Server::start_with(db.clone(), cfg).unwrap();
    (dir, db, server)
}

/// A client that surfaces the first error instead of retrying, so tests
/// see exactly what the server sent.
fn no_retry() -> ClientConfig {
    ClientConfig {
        retries: 0,
        request_timeout: Duration::from_secs(20),
        ..ClientConfig::default()
    }
}

/// Polls `cond` until it holds or the timeout elapses.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn request_deadline_aborts_slow_run_with_typed_timeout() {
    let (_dir, _db, server) = test_server(ServerConfig {
        request_deadline: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let mut client = Client::connect_with(server.addr(), no_retry()).unwrap();

    let started = Instant::now();
    let err = client
        .run("CALL aion.sleep(10000)", Vec::new())
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::TimedOut, "got: {err}");
    assert!(
        err.to_string().contains("deadline"),
        "timeout error should name the deadline, got: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "abort must happen near the deadline, not after the full sleep"
    );
    assert!(server.stats().deadline_aborts >= 1);

    // The request was aborted, not the connection: the same client keeps
    // working without reconnecting.
    client.ping().unwrap();
    assert_eq!(client.reconnect_count(), 0);
}

#[test]
fn admission_control_sheds_connections_over_the_cap() {
    let (_dir, _db, server) = test_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // Occupy the only slot (ping so the worker is definitely registered
    // before the second connection races in).
    let mut occupant = Client::connect(addr).unwrap();
    occupant.ping().unwrap();

    // A raw socket shows the exact shed behaviour: the server answers
    // with a typed Overloaded error before reading anything, then closes.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = read_frame(&mut raw).unwrap();
    match decode_response(&payload).unwrap() {
        Response::Err(e) => {
            assert_eq!(e.code, ErrorCode::Overloaded);
            assert!(e.message.contains("overloaded"), "got: {}", e.message);
        }
        other => panic!("expected Overloaded error, got {other:?}"),
    }
    assert!(wait_for(Duration::from_secs(2), || server.stats().shed >= 1));

    // Through the Client, an Overloaded response maps to ResourceBusy
    // when retries are exhausted...
    let err = Client::connect_with(addr, no_retry())
        .and_then(|mut c| c.ping())
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ResourceBusy, "got: {err}");

    // ...and with retries enabled the client rides out the overload once
    // capacity frees up.
    let freer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        drop(occupant);
    });
    let mut patient = Client::connect_with(
        addr,
        ClientConfig {
            retries: 20,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(100),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    patient.ping().unwrap();
    freer.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_request_to_completion() {
    let (_dir, _db, mut server) = test_server(ServerConfig {
        drain_deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect_with(addr, no_retry()).unwrap();
        let _ = tx.send(client.run("CALL aion.sleep(400)", Vec::new()));
    });

    // Let the request get in flight, then drain. Shutdown must wait for
    // the sleep to finish rather than cutting the connection.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown();

    let result = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("client thread hung through shutdown");
    let result = result.expect("in-flight request must complete during drain");
    assert_eq!(result.columns, vec!["slept_ms".to_string()]);
    assert_eq!(server.active_connections(), 0);
    assert_eq!(server.stats().drain_forced, 0);
    worker.join().unwrap();
}

#[test]
fn shutdown_force_closes_stragglers_past_drain_deadline() {
    let (_dir, _db, mut server) = test_server(ServerConfig {
        request_deadline: Duration::from_secs(30),
        drain_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect_with(addr, no_retry()).unwrap();
        let _ = tx.send(client.run("CALL aion.sleep(10000)", Vec::new()));
    });

    std::thread::sleep(Duration::from_millis(150));
    let shutdown_started = Instant::now();
    server.shutdown();
    assert!(
        shutdown_started.elapsed() < Duration::from_secs(10),
        "shutdown must not wait out the full 10 s sleep"
    );

    // The straggler was cancelled and its socket force-closed: the client
    // sees an error (a typed drain abort or a dead connection), never a
    // hang, and no worker leaks.
    let result = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("client thread hung through force-close");
    assert!(result.is_err(), "straggler run must not report success");
    assert!(server.stats().drain_forced >= 1);
    assert!(server.stats().deadline_aborts >= 1);
    assert_eq!(server.active_connections(), 0);
    worker.join().unwrap();
}

/// Mock server: accepts connections until `stop`, reads frames, and for
/// connection number `i` (0-based) drops after reading `i + 1` frames —
/// except when `reply_on_second` is set, where the second connection gets
/// a well-formed empty result. Returns total frames observed.
fn mock_frame_counter(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    reply_on_second: bool,
) -> std::thread::JoinHandle<u32> {
    std::thread::spawn(move || {
        listener.set_nonblocking(true).unwrap();
        let mut frames = 0u32;
        let mut conns = 0u32;
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((mut sock, _)) => {
                    sock.set_nonblocking(false).unwrap();
                    sock.set_read_timeout(Some(Duration::from_millis(500)))
                        .unwrap();
                    conns += 1;
                    if let Ok(payload) = read_frame(&mut sock) {
                        let _ = payload;
                        frames += 1;
                        if reply_on_second && conns >= 2 {
                            let ok = Response::Ok {
                                result: query::QueryResult {
                                    columns: vec!["n".into()],
                                    rows: Vec::new(),
                                },
                                watermark: 0,
                                cursor: None,
                            };
                            let _ = write_frame(&mut sock, &encode_response(&ok));
                            // Hold the socket open briefly so the client
                            // can read the reply before we drop it.
                            std::thread::sleep(Duration::from_millis(100));
                        }
                    }
                    // Drop: the client observes a dead connection.
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        frames
    })
}

#[test]
fn client_never_retries_non_idempotent_run() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mock = mock_frame_counter(listener, stop.clone(), false);

    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            request_timeout: Duration::from_secs(2),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // The mock kills the connection after the frame is received — the
    // classic "acked by the network, outcome unknown" window. A write
    // must surface the error instead of being replayed.
    let err = client
        .run("CREATE (n:Ledger {entry: 1})", Vec::new())
        .unwrap_err();
    assert!(
        matches!(
            err.kind(),
            ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
        ),
        "got: {err}"
    );

    // Give any (buggy) retry a moment to land before counting.
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Release);
    let frames = mock.join().unwrap();
    assert_eq!(frames, 1, "non-idempotent Run must be sent exactly once");
}

#[test]
fn client_retries_read_only_run_after_connection_loss() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mock = mock_frame_counter(listener, stop.clone(), true);

    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            request_timeout: Duration::from_secs(2),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // First attempt dies mid-exchange; the read-only query is safe to
    // replay, so the client reconnects and the second attempt succeeds.
    let result = client.run("MATCH (n:Ledger) RETURN n", Vec::new()).unwrap();
    assert_eq!(result.columns, vec!["n".to_string()]);
    assert!(client.reconnect_count() >= 1);

    stop.store(true, Ordering::Release);
    let frames = mock.join().unwrap();
    assert_eq!(frames, 2, "read-only Run should be retried exactly once");
}

#[test]
fn clean_eof_is_not_a_connection_error_but_garbage_is() {
    let (_dir, _db, server) = test_server(ServerConfig::default());
    let addr = server.addr();

    // A connect-then-close at a frame boundary is a clean hangup.
    drop(TcpStream::connect(addr).unwrap());
    assert!(wait_for(Duration::from_secs(2), || {
        server.active_connections() == 0
    }));
    assert_eq!(server.stats().conn_errors, 0);

    // A garbage header (length far over the frame cap) is a protocol
    // failure and must be counted.
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(&[0xFF; 12]).unwrap();
    assert!(
        wait_for(Duration::from_secs(2), || server.stats().conn_errors >= 1),
        "garbage frame header must count as a connection error"
    );
    drop(sock);
}
