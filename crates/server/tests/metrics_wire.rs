//! `Request::Metrics` end to end: a client drives queries, then fetches
//! the process-wide metrics snapshot over the wire and sees the work it
//! just caused reflected in every layer.

use aion::{Aion, AionConfig};
use aion_server::{Client, Server};
use query::Value;
use std::sync::Arc;
use tempfile::tempdir;

#[test]
fn metrics_snapshot_travels_over_the_wire() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let server = Server::start(db.clone()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for i in 0..8 {
        client
            .run(&format!("CREATE (n:Person {{_id: {i}, v: {i}}})"), vec![])
            .unwrap();
    }
    db.lineage_barrier(db.latest_ts());
    let r = client
        .run(
            "MATCH (n) WHERE id(n) = $id RETURN n.v",
            vec![("id".into(), Value::Int(3))],
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(3)]]);

    let snap = client.metrics().unwrap();

    // The wire snapshot must carry the work the client just generated.
    let counter = |name: &str| {
        snap.counter(name)
            .unwrap_or_else(|| panic!("counter {name} missing from wire snapshot"))
    };
    assert!(counter("server.requests") >= 10, "all requests counted");
    assert!(counter("query.executed") >= 9, "queries counted");
    assert!(counter("core.commits") >= 8, "commits counted");
    assert!(counter("timestore.log.appends") >= 8, "log appends counted");
    assert!(
        counter("lineagestore.commits.applied") >= 8,
        "lineage ingest counted"
    );
    let run_hist = snap
        .histogram("server.request.run.latency_ns")
        .expect("run latency histogram on the wire");
    assert!(run_hist.count >= 9);
    assert!(run_hist.sum > 0);
    assert!(run_hist.p50 <= run_hist.p95 && run_hist.p95 <= run_hist.p99);

    // The snapshot equals the in-process view modulo work recorded after
    // it was taken: every wire counter must be <= the live value now.
    let live = db.metrics();
    for (name, v) in &snap.counters {
        let now = live
            .counter(name)
            .unwrap_or_else(|| panic!("counter {name} vanished"));
        assert!(now >= *v, "{name} went backwards: wire {v}, live {now}");
    }
}
