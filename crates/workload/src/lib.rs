//! # aion-workload — evaluation datasets and update streams (Sec. 6.1)
//!
//! The paper evaluates on six real-world graphs (Table 3). Those datasets
//! cannot ship with this reproduction, so [`datasets`] carries their shape
//! parameters — |V|, |E|, average degree, directedness — and [`generator`]
//! synthesizes graphs with the same shape at a configurable scale, using a
//! power-law target distribution to reproduce degree skew.
//!
//! Timestamping follows the paper's recipe exactly: "we load and shuffle
//! all relationships, assign them monotonically increasing timestamps, and
//! consume them in timestamp order to emulate relationship additions over
//! time, where node creation always precedes the creation of any incident
//! relationships". Undirected datasets (DBLP, Orkut) have each edge
//! replaced by two directed relationships.
//!
//! [`txmix`] generates the Bolt transaction mixes of Fig. 13 (read-only,
//! 10 % writes, 20 % writes).

pub mod datasets;
pub mod generator;
pub mod simops;
pub mod txmix;

pub use datasets::{Dataset, DATASETS};
pub use generator::{generate, GeneratedWorkload};
pub use simops::{commit_script, SimOpsConfig};
pub use txmix::{ClientOp, TxMix};
