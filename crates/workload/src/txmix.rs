//! Client transaction mixes for the Bolt experiments (Fig. 13): "the reads
//! retrieve temporal graph entities at arbitrary time points, and the
//! writes create or update nodes and relationships".

use lpg::{NodeId, RelId, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One client operation.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientOp {
    /// Read a node's state at a time point.
    ReadNode(NodeId, Timestamp),
    /// Read a relationship's state at a time point.
    ReadRel(RelId, Timestamp),
    /// Create a fresh node (id chosen above the existing range).
    CreateNode(NodeId),
    /// Update a node property.
    UpdateNode(NodeId),
}

/// A reproducible operation mix with a given write fraction.
pub struct TxMix {
    rng: SmallRng,
    write_fraction: f64,
    nodes: u64,
    rels: u64,
    max_ts: Timestamp,
    next_new_node: u64,
}

impl TxMix {
    /// A mix over an ingested graph of `nodes`/`rels` with history up to
    /// `max_ts`. `write_fraction` ∈ [0, 1] (0.0 / 0.1 / 0.2 in Fig. 13).
    pub fn new(seed: u64, write_fraction: f64, nodes: u64, rels: u64, max_ts: Timestamp) -> TxMix {
        TxMix {
            rng: SmallRng::seed_from_u64(seed),
            write_fraction,
            nodes: nodes.max(1),
            rels: rels.max(1),
            max_ts: max_ts.max(1),
            next_new_node: nodes + 1_000_000,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> ClientOp {
        if self.rng.gen::<f64>() < self.write_fraction {
            if self.rng.gen::<bool>() {
                let id = self.next_new_node;
                self.next_new_node += 1;
                ClientOp::CreateNode(NodeId::new(id))
            } else {
                ClientOp::UpdateNode(NodeId::new(self.rng.gen_range(0..self.nodes)))
            }
        } else {
            let ts = self.rng.gen_range(1..=self.max_ts);
            if self.rng.gen::<bool>() {
                ClientOp::ReadNode(NodeId::new(self.rng.gen_range(0..self.nodes)), ts)
            } else {
                ClientOp::ReadRel(RelId::new(self.rng.gen_range(0..self.rels)), ts)
            }
        }
    }

    /// Draws `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<ClientOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_fraction_is_respected() {
        let mut mix = TxMix::new(1, 0.2, 1000, 1000, 500);
        let ops = mix.take(10_000);
        let writes = ops
            .iter()
            .filter(|o| matches!(o, ClientOp::CreateNode(_) | ClientOp::UpdateNode(_)))
            .count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn read_only_mix_has_no_writes() {
        let mut mix = TxMix::new(2, 0.0, 10, 10, 10);
        assert!(mix
            .take(1000)
            .iter()
            .all(|o| matches!(o, ClientOp::ReadNode(..) | ClientOp::ReadRel(..))));
    }

    #[test]
    fn created_node_ids_are_unique_and_fresh() {
        let mut mix = TxMix::new(3, 1.0, 10, 10, 10);
        let mut created = Vec::new();
        for op in mix.take(1000) {
            if let ClientOp::CreateNode(id) = op {
                assert!(id.raw() > 10);
                created.push(id);
            }
        }
        let len = created.len();
        created.dedup();
        assert_eq!(created.len(), len);
    }
}
