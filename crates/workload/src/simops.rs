//! Deterministic commit scripts for the crash-consistency simulation
//! harness (`tests/sim_crash.rs`).
//!
//! [`commit_script`] turns a single `u64` seed into a sequence of commit
//! batches that is *valid by construction*: every update satisfies the LPG
//! constraints (nodes exist before incident relationships, deletions only
//! target childless entities) when the batches are applied in order. The
//! same seed always yields the same script, so a failing crash-simulation
//! run reproduces from its printed seed alone.

use lpg::{NodeId, PropertyValue, RelId, StrId, Update};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Shape of a generated commit script.
#[derive(Clone, Debug)]
pub struct SimOpsConfig {
    /// Number of commit batches to generate.
    pub commits: usize,
    /// Maximum updates per batch (each batch draws `1..=max`).
    pub ops_per_commit: usize,
    /// Interned `_app_start` key for bitemporal properties.
    pub app_start: StrId,
    /// Interned `_app_end` key for bitemporal properties.
    pub app_end: StrId,
    /// Interned ordinary property key.
    pub key: StrId,
    /// Interned label.
    pub label: StrId,
}

/// Generator state: the graph as it will exist after every update emitted
/// so far, tracked just precisely enough to never emit an invalid update.
struct Model {
    next_node: u64,
    next_rel: u64,
    live_nodes: Vec<NodeId>,
    live_rels: Vec<RelId>,
    degree: HashMap<NodeId, usize>,
    endpoints: HashMap<RelId, (NodeId, NodeId)>,
}

impl Model {
    fn pick_node(&self, rng: &mut SmallRng) -> NodeId {
        self.live_nodes[rng.gen_range(0..self.live_nodes.len())]
    }

    fn pick_rel(&self, rng: &mut SmallRng) -> RelId {
        self.live_rels[rng.gen_range(0..self.live_rels.len())]
    }
}

/// Generates `cfg.commits` valid commit batches from `seed`.
pub fn commit_script(seed: u64, cfg: &SimOpsConfig) -> Vec<Vec<Update>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = Model {
        next_node: 0,
        next_rel: 0,
        live_nodes: Vec::new(),
        live_rels: Vec::new(),
        degree: HashMap::new(),
        endpoints: HashMap::new(),
    };
    let mut script = Vec::with_capacity(cfg.commits);
    for _ in 0..cfg.commits {
        let n_ops = rng.gen_range(1..=cfg.ops_per_commit.max(1));
        let mut batch = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            batch.push(next_op(&mut rng, &mut m, cfg));
        }
        script.push(batch);
    }
    script
}

/// Emits one valid update and folds it into the model.
fn next_op(rng: &mut SmallRng, m: &mut Model, cfg: &SimOpsConfig) -> Update {
    // Weighted op mix; structural choices fall back to AddNode whenever the
    // graph is too small for them.
    let roll = rng.gen_range(0u32..100);
    if m.live_nodes.len() < 2 || roll < 20 {
        let id = NodeId::new(m.next_node);
        m.next_node += 1;
        m.live_nodes.push(id);
        m.degree.insert(id, 0);
        let labels = if rng.gen_range(0u32..2) == 0 {
            vec![cfg.label]
        } else {
            vec![]
        };
        return Update::AddNode {
            id,
            labels,
            props: vec![(cfg.key, PropertyValue::Int(rng.gen_range(0..1000)))],
        };
    }
    match roll {
        20..=39 => {
            // AddRel between two live nodes (self-loops allowed upstream,
            // but keep endpoints distinct for readability).
            let src = m.pick_node(rng);
            let mut tgt = m.pick_node(rng);
            if tgt == src {
                tgt = m.live_nodes[(m.live_nodes.iter().position(|&n| n == src).unwrap_or(0) + 1)
                    % m.live_nodes.len()];
            }
            let id = RelId::new(m.next_rel);
            m.next_rel += 1;
            m.live_rels.push(id);
            m.endpoints.insert(id, (src, tgt));
            *m.degree.entry(src).or_insert(0) += 1;
            *m.degree.entry(tgt).or_insert(0) += 1;
            Update::AddRel {
                id,
                src,
                tgt,
                label: Some(cfg.label),
                props: vec![(cfg.key, PropertyValue::Int(rng.gen_range(0..1000)))],
            }
        }
        40..=59 => {
            // Plain node property churn.
            let id = m.pick_node(rng);
            Update::SetNodeProp {
                id,
                key: cfg.key,
                value: PropertyValue::Int(rng.gen_range(0..1000)),
            }
        }
        60..=74 => {
            // Bitemporal annotation: a valid application-time interval.
            let id = m.pick_node(rng);
            let start = rng.gen_range(0i64..500);
            let (key, value) = if rng.gen_range(0u32..2) == 0 {
                (cfg.app_start, PropertyValue::Int(start))
            } else {
                (
                    cfg.app_end,
                    PropertyValue::Int(start + rng.gen_range(1i64..500)),
                )
            };
            Update::SetNodeProp { id, key, value }
        }
        75..=84 if !m.live_rels.is_empty() => {
            let id = m.pick_rel(rng);
            Update::SetRelProp {
                id,
                key: cfg.key,
                value: PropertyValue::Int(rng.gen_range(0..1000)),
            }
        }
        85..=89 if !m.live_rels.is_empty() => {
            // DeleteRel: always valid for a live relationship.
            let idx = rng.gen_range(0..m.live_rels.len());
            let id = m.live_rels.swap_remove(idx);
            if let Some((src, tgt)) = m.endpoints.remove(&id) {
                if let Some(d) = m.degree.get_mut(&src) {
                    *d = d.saturating_sub(1);
                }
                if let Some(d) = m.degree.get_mut(&tgt) {
                    *d = d.saturating_sub(1);
                }
            }
            Update::DeleteRel { id }
        }
        90..=93 => {
            // DeleteNode: only nodes without incident relationships.
            let isolated: Vec<NodeId> = m
                .live_nodes
                .iter()
                .copied()
                .filter(|n| m.degree.get(n).copied().unwrap_or(0) == 0)
                .collect();
            if isolated.is_empty() {
                let id = m.pick_node(rng);
                return Update::AddLabel {
                    id,
                    label: cfg.label,
                };
            }
            let id = isolated[rng.gen_range(0..isolated.len())];
            m.live_nodes.retain(|&n| n != id);
            m.degree.remove(&id);
            Update::DeleteNode { id }
        }
        _ => {
            let id = m.pick_node(rng);
            if rng.gen_range(0u32..2) == 0 {
                Update::AddLabel {
                    id,
                    label: cfg.label,
                }
            } else {
                Update::RemoveNodeProp { id, key: cfg.key }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::Graph;

    fn cfg() -> SimOpsConfig {
        SimOpsConfig {
            commits: 120,
            ops_per_commit: 6,
            app_start: StrId::new(0),
            app_end: StrId::new(1),
            key: StrId::new(2),
            label: StrId::new(3),
        }
    }

    #[test]
    fn scripts_are_valid_by_construction() {
        for seed in 0..8u64 {
            let script = commit_script(seed, &cfg());
            assert_eq!(script.len(), 120);
            let mut g = Graph::new();
            for batch in &script {
                assert!(!batch.is_empty());
                for u in batch {
                    g.apply(u).unwrap();
                }
            }
            g.check_consistency().unwrap();
        }
    }

    #[test]
    fn scripts_are_deterministic_per_seed() {
        let a = commit_script(7, &cfg());
        let b = commit_script(7, &cfg());
        let c = commit_script(8, &cfg());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scripts_exercise_deletions() {
        let script = commit_script(3, &cfg());
        let flat: Vec<&Update> = script.iter().flatten().collect();
        assert!(flat.iter().any(|u| matches!(u, Update::DeleteRel { .. })));
        assert!(flat.iter().any(|u| matches!(u, Update::SetNodeProp { .. })));
    }
}
