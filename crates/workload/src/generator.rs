//! Synthetic graph generation with the paper's timestamping recipe.

use crate::datasets::Dataset;
use lpg::{NodeId, PropertyValue, RelId, StrId, TimestampedUpdate, Update};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated update stream plus bookkeeping for the benchmarks.
#[derive(Clone, Debug)]
pub struct GeneratedWorkload {
    /// The dataset shape generated.
    pub dataset: Dataset,
    /// Timestamp-ordered updates (nodes precede incident relationships).
    pub updates: Vec<TimestampedUpdate>,
    /// Ids of all created relationships (for random point queries).
    pub rel_ids: Vec<RelId>,
    /// Number of nodes created.
    pub node_count: u64,
    /// Highest assigned timestamp.
    pub max_ts: u64,
}

/// Label/property vocabulary used by generated workloads.
pub struct Vocabulary {
    /// Node label.
    pub label: StrId,
    /// Relationship type.
    pub rel_type: StrId,
    /// Relationship weight property.
    pub weight: StrId,
}

impl Default for Vocabulary {
    fn default() -> Self {
        Vocabulary {
            label: StrId::new(0),
            rel_type: StrId::new(1),
            weight: StrId::new(2),
        }
    }
}

/// Samples a node with power-law skew (low ids are hubs), matching the
/// heavy-tailed degree distributions of the Table 3 graphs. Larger `pow`
/// concentrates more mass on the hubs.
fn skewed(rng: &mut SmallRng, n: u64, pow: i32) -> u64 {
    let u: f64 = rng.gen();
    (u.powi(pow) * n as f64) as u64 % n
}

/// Generates the update stream for `dataset` (already scaled), with one
/// timestamp per update.
///
/// The recipe mirrors Sec. 6.1: edges are generated, shuffled, then
/// assigned monotonically increasing timestamps; each node's creation is
/// emitted right before its first incident relationship. Undirected
/// datasets yield two directed relationships per edge (consecutive
/// timestamps, like the paper's dual loading).
pub fn generate(dataset: Dataset, seed: u64) -> GeneratedWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vocab = Vocabulary::default();
    let n = dataset.nodes;
    // Undirected graphs double each edge; keep the *total* relationship
    // count at the dataset's |E| so Table 3 shapes stay comparable.
    let base_edges = if dataset.directed {
        dataset.rels
    } else {
        dataset.rels / 2
    };
    // Generate and shuffle the edge list. The Table 3 datasets are simple
    // graphs (no parallel edges), so duplicate (src, tgt) pairs are
    // rejected — this also keeps the Raphtory baseline's multigraph
    // restriction from biasing comparisons on synthetic duplicates.
    let mut seen = std::collections::HashSet::with_capacity(base_edges as usize * 2);
    let mut edges: Vec<(u64, u64)> = Vec::with_capacity(base_edges as usize);
    let mut attempts = 0u64;
    while (edges.len() as u64) < base_edges && attempts < base_edges * 20 {
        attempts += 1;
        let src = skewed(&mut rng, n, 2);
        let mut tgt = skewed(&mut rng, n, 3);
        if tgt == src {
            tgt = (tgt + 1) % n;
        }
        // Undirected datasets will also emit the reverse direction, so
        // reserve both orientations.
        let dup = if dataset.directed {
            !seen.insert((src, tgt))
        } else {
            seen.contains(&(src, tgt)) || seen.contains(&(tgt, src)) || {
                seen.insert((src, tgt));
                seen.insert((tgt, src));
                false
            }
        };
        if !dup {
            edges.push((src, tgt));
        }
    }
    // Fisher–Yates shuffle.
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }

    let mut updates = Vec::with_capacity(edges.len() * 2 + n as usize);
    let mut rel_ids = Vec::with_capacity(edges.len() * 2);
    let mut created = vec![false; n as usize];
    let mut ts = 0u64;
    let mut next_rel = 0u64;
    let emit_node =
        |id: u64, ts: &mut u64, updates: &mut Vec<TimestampedUpdate>, created: &mut Vec<bool>| {
            if !created[id as usize] {
                created[id as usize] = true;
                *ts += 1;
                updates.push(TimestampedUpdate::new(
                    *ts,
                    Update::AddNode {
                        id: NodeId::new(id),
                        labels: vec![vocab.label],
                        props: vec![],
                    },
                ));
            }
        };
    for (src, tgt) in edges {
        emit_node(src, &mut ts, &mut updates, &mut created);
        emit_node(tgt, &mut ts, &mut updates, &mut created);
        let directions: &[(u64, u64)] = if dataset.directed {
            &[(src, tgt)]
        } else {
            &[(src, tgt), (tgt, src)]
        };
        for &(s, t) in directions {
            ts += 1;
            let id = RelId::new(next_rel);
            next_rel += 1;
            rel_ids.push(id);
            updates.push(TimestampedUpdate::new(
                ts,
                Update::AddRel {
                    id,
                    src: NodeId::new(s),
                    tgt: NodeId::new(t),
                    label: Some(vocab.rel_type),
                    props: vec![(
                        vocab.weight,
                        PropertyValue::Float(rng.gen_range(0.0..100.0)),
                    )],
                },
            ));
        }
    }
    // Emit any isolated nodes at the end.
    for id in 0..n {
        emit_node(id, &mut ts, &mut updates, &mut created);
    }
    GeneratedWorkload {
        dataset,
        updates,
        rel_ids,
        node_count: n,
        max_ts: ts,
    }
}

impl GeneratedWorkload {
    /// Groups the stream into commit batches of `batch` updates (the write
    /// batching of Sec. 6.4, "batches of 1000 transactions").
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = (u64, Vec<Update>)> + '_ {
        self.updates.chunks(batch.max(1)).map(|chunk| {
            let ts = chunk.last().expect("non-empty chunk").ts;
            (ts, chunk.iter().map(|u| u.op.clone()).collect())
        })
    }

    /// A random committed relationship id.
    pub fn random_rel(&self, rng: &mut SmallRng) -> RelId {
        self.rel_ids[rng.gen_range(0..self.rel_ids.len())]
    }

    /// A random node id.
    pub fn random_node(&self, rng: &mut SmallRng) -> NodeId {
        NodeId::new(rng.gen_range(0..self.node_count))
    }

    /// A random timestamp within the ingested history.
    pub fn random_ts(&self, rng: &mut SmallRng) -> u64 {
        rng.gen_range(1..=self.max_ts.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::by_name;
    use lpg::Graph;

    #[test]
    fn stream_is_ordered_and_consistent() {
        let spec = by_name("dblp").unwrap().scaled(0.002);
        let w = generate(spec, 42);
        assert!(lpg::update::updates_ordered(&w.updates));
        // Replaying through the constraint checker must succeed — this is
        // the "node creation always precedes incident relationships" rule.
        let mut g = Graph::new();
        for u in &w.updates {
            g.apply(&u.op).unwrap();
        }
        assert_eq!(g.node_count() as u64, w.node_count);
        assert_eq!(g.rel_count(), w.rel_ids.len());
        g.check_consistency().unwrap();
    }

    #[test]
    fn undirected_datasets_double_edges() {
        let spec = by_name("dblp").unwrap().scaled(0.002); // undirected
        let w = generate(spec, 1);
        // Total rels ≈ |E| (two directed per undirected edge, |E|/2 edges);
        // deduplication may fall slightly short on dense graphs.
        let expect = spec.rels / 2 * 2;
        assert!(w.rel_ids.len() as u64 <= expect);
        assert!(
            w.rel_ids.len() as u64 >= expect * 9 / 10,
            "{}",
            w.rel_ids.len()
        );
        assert_eq!(w.rel_ids.len() % 2, 0, "edges come in direction pairs");
        let directed = by_name("wikitalk").unwrap().scaled(0.0005);
        let w = generate(directed, 1);
        assert!(w.rel_ids.len() as u64 >= directed.rels * 9 / 10);
    }

    #[test]
    fn degree_skew_is_heavy_tailed() {
        let spec = by_name("pokec").unwrap().scaled(0.001);
        let w = generate(spec, 7);
        let mut g = Graph::new();
        for u in &w.updates {
            g.apply(&u.op).unwrap();
        }
        let mut degrees: Vec<usize> = (0..w.node_count)
            .map(|i| g.degree(NodeId::new(i), lpg::Direction::Both))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = degrees[..degrees.len() / 10].iter().sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top_decile as f64 > total as f64 * 0.3,
            "top 10% of nodes should hold >30% of degree (got {})",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn batching_covers_everything() {
        let spec = by_name("dblp").unwrap().scaled(0.001);
        let w = generate(spec, 3);
        let total: usize = w.batches(1000).map(|(_, ops)| ops.len()).sum();
        assert_eq!(total, w.updates.len());
        // Batch timestamps are increasing.
        let ts: Vec<u64> = w.batches(1000).map(|(ts, _)| ts).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn determinism_by_seed() {
        let spec = by_name("dblp").unwrap().scaled(0.001);
        let a = generate(spec, 9);
        let b = generate(spec, 9);
        let c = generate(spec, 10);
        assert_eq!(a.updates.len(), b.updates.len());
        assert_eq!(a.updates[10], b.updates[10]);
        assert_ne!(
            a.updates.iter().map(|u| u.op.clone()).collect::<Vec<_>>(),
            c.updates.iter().map(|u| u.op.clone()).collect::<Vec<_>>()
        );
    }
}
