//! The six evaluation datasets of Table 3, as shape specifications.

/// Shape parameters of one evaluation dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dataset {
    /// Dataset name as in Table 3.
    pub name: &'static str,
    /// Application domain.
    pub domain: &'static str,
    /// Node count |V| at full scale.
    pub nodes: u64,
    /// Relationship count |E| at full scale (before undirected doubling).
    pub rels: u64,
    /// Whether the source graph is directed; undirected graphs get each
    /// edge replaced by two directed relationships (Sec. 6.1).
    pub directed: bool,
}

impl Dataset {
    /// |E| / |V| as reported in Table 3.
    pub fn avg_degree(&self) -> f64 {
        self.rels as f64 / self.nodes as f64
    }

    /// Scales the dataset down by `scale` (1.0 = full size), preserving
    /// the average degree. Scales below ~1e-5 are clamped to a minimum of
    /// 100 nodes.
    pub fn scaled(&self, scale: f64) -> Dataset {
        let nodes = ((self.nodes as f64 * scale) as u64).max(100);
        let rels = (nodes as f64 * self.avg_degree()) as u64;
        Dataset {
            nodes,
            rels,
            ..*self
        }
    }
}

/// Table 3, in paper order.
pub const DATASETS: [Dataset; 6] = [
    Dataset {
        name: "DBLP",
        domain: "citation",
        nodes: 300_000,
        rels: 2_100_000,
        directed: false,
    },
    Dataset {
        name: "WikiTalk",
        domain: "communication",
        nodes: 1_000_000,
        rels: 7_800_000,
        directed: true,
    },
    Dataset {
        name: "Pokec",
        domain: "social",
        nodes: 1_600_000,
        rels: 30_000_000,
        directed: true,
    },
    Dataset {
        name: "LiveJournal",
        domain: "social",
        nodes: 4_800_000,
        rels: 69_000_000,
        directed: true,
    },
    Dataset {
        name: "DBPedia",
        domain: "hyperlink",
        nodes: 18_000_000,
        rels: 172_000_000,
        directed: true,
    },
    Dataset {
        name: "Orkut",
        domain: "social",
        nodes: 3_000_000,
        rels: 234_000_000,
        directed: false,
    },
];

/// Looks a dataset up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Dataset> {
    DATASETS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_degrees_match_paper() {
        // Paper reports |E|/|V| of 7, 7.8, 18.8, 14.4, 9.5, 78.
        let expected = [7.0, 7.8, 18.75, 14.375, 9.56, 78.0];
        for (d, e) in DATASETS.iter().zip(expected) {
            assert!(
                (d.avg_degree() - e).abs() / e < 0.05,
                "{}: {} vs {}",
                d.name,
                d.avg_degree(),
                e
            );
        }
    }

    #[test]
    fn scaling_preserves_degree() {
        let d = by_name("pokec").unwrap();
        let s = d.scaled(0.001);
        assert!(s.nodes >= 100);
        assert!((s.avg_degree() - d.avg_degree()).abs() < 0.5);
        // Tiny scales clamp.
        let tiny = d.scaled(1e-9);
        assert_eq!(tiny.nodes, 100);
    }

    #[test]
    fn lookup() {
        assert!(!by_name("DBLP").unwrap().directed);
        assert!(by_name("nope").is_none());
    }
}
