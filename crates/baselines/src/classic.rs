//! The classic (non-temporal) baseline: a latest-version-only store, the
//! stand-in for plain Neo4j. Used to normalize ingestion throughput
//! (Fig. 9, "we compute the throughput of Neo4j without temporal storage
//! and use it as a baseline") and as the recompute baseline for
//! incremental analytics (Figs. 12/14) — it can only answer "now", so any
//! historical question forces a full recomputation from retained inputs.

use crate::TemporalBackend;
use dyngraph::DynGraph;
use lpg::{Graph, RelId, Relationship, Timestamp, Update};

/// Latest-version-only graph store.
#[derive(Default)]
pub struct ClassicStore {
    graph: DynGraph,
    updates: u64,
}

impl ClassicStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The live graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// Updates ingested.
    pub fn update_count(&self) -> u64 {
        self.updates
    }
}

impl TemporalBackend for ClassicStore {
    fn name(&self) -> &'static str {
        "classic (non-temporal)"
    }

    fn apply(&mut self, _ts: Timestamp, op: &Update) {
        self.updates += 1;
        // No history is retained; failed updates are ignored as the
        // harness always feeds consistent streams.
        let _ = self.graph.apply(op);
    }

    fn rel_at(&self, id: RelId, _ts: Timestamp) -> Option<Relationship> {
        // A non-temporal store can only answer about the present.
        self.graph.rel(id).cloned()
    }

    fn snapshot_at(&self, _ts: Timestamp) -> Graph {
        self.graph.to_graph()
    }

    fn heap_size(&self) -> usize {
        self.graph.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::NodeId;

    #[test]
    fn only_latest_is_visible() {
        let mut c = ClassicStore::new();
        c.apply(
            1,
            &Update::AddNode {
                id: NodeId::new(1),
                labels: vec![],
                props: vec![],
            },
        );
        c.apply(
            2,
            &Update::AddNode {
                id: NodeId::new(2),
                labels: vec![],
                props: vec![],
            },
        );
        c.apply(
            3,
            &Update::AddRel {
                id: RelId::new(0),
                src: NodeId::new(1),
                tgt: NodeId::new(2),
                label: None,
                props: vec![],
            },
        );
        c.apply(4, &Update::DeleteRel { id: RelId::new(0) });
        // Historical timestamps return the latest state regardless.
        assert!(c.rel_at(RelId::new(0), 3).is_none());
        assert_eq!(c.snapshot_at(3).rel_count(), 0);
        assert_eq!(c.snapshot_at(100).node_count(), 2);
        assert_eq!(c.update_count(), 4);
    }
}
