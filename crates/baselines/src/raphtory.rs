//! A Raphtory-style fine-grained in-memory temporal store.
//!
//! "Systems such as Raphtory … use a fine-grained storage approach: graph
//! updates are stored in a key-value store, where the key is either a node
//! or a relationship ID and the corresponding value is a list of that
//! element's history" (Sec. 2.2). Point lookups must "check whether the
//! start and end nodes are visible at a given time by linearly scanning
//! their relationship updates" (`2·|U_R^n|`, Table 4); snapshots scan the
//! complete history (`|U|`).
//!
//! Faithfully to v0.5.6, multigraphs are unsupported: a relationship
//! between an (src, tgt) pair that already has a live relationship is
//! dropped at ingestion (the paper reports Raphtory loading only 42 % of
//! WikiTalk for this reason).

use crate::TemporalBackend;
use lpg::{prop_remove, prop_set};
use lpg::{Graph, Node, NodeId, RelId, Relationship, Timestamp, Update};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum NodeEvent {
    Added {
        labels: Vec<lpg::StrId>,
        props: lpg::Props,
    },
    Deleted,
    SetProp(lpg::StrId, lpg::PropertyValue),
    RemoveProp(lpg::StrId),
    AddLabel(lpg::StrId),
    RemoveLabel(lpg::StrId),
}

#[derive(Clone, Debug)]
enum RelEvent {
    Added {
        src: NodeId,
        tgt: NodeId,
        label: Option<lpg::StrId>,
        props: lpg::Props,
    },
    Deleted,
    SetProp(lpg::StrId, lpg::PropertyValue),
    RemoveProp(lpg::StrId),
}

/// Per-node relationship update entry: `(ts, rel, added)`.
type RelUpdate = (Timestamp, RelId, bool);

/// The fine-grained in-memory store.
#[derive(Default)]
pub struct RaphtoryLike {
    node_history: HashMap<NodeId, Vec<(Timestamp, NodeEvent)>>,
    rel_history: HashMap<RelId, Vec<(Timestamp, RelEvent)>>,
    /// Per-node incoming+outgoing relationship update lists — the vectors
    /// the point-lookup path linearly scans.
    node_rel_updates: HashMap<NodeId, Vec<RelUpdate>>,
    /// Live (src, tgt) pairs for the multigraph restriction.
    live_pairs: HashMap<(NodeId, NodeId), RelId>,
    updates: u64,
    dropped_multi: u64,
}

impl RaphtoryLike {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates ingested (|U|).
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Relationships dropped by the multigraph restriction.
    pub fn dropped_multigraph_rels(&self) -> u64 {
        self.dropped_multi
    }

    fn rel_endpoints(&self, id: RelId) -> Option<(NodeId, NodeId)> {
        self.rel_history
            .get(&id)?
            .iter()
            .find_map(|(_, e)| match e {
                RelEvent::Added { src, tgt, .. } => Some((*src, *tgt)),
                _ => None,
            })
    }

    /// Reconstructs a node state at `ts` by replaying its event list.
    fn node_state(&self, id: NodeId, ts: Timestamp) -> Option<Node> {
        let events = self.node_history.get(&id)?;
        let mut node: Option<Node> = None;
        for (ets, e) in events {
            if *ets > ts {
                break;
            }
            match e {
                NodeEvent::Added { labels, props } => {
                    node = Some(Node::new(id, labels.clone(), props.clone()));
                }
                NodeEvent::Deleted => node = None,
                NodeEvent::SetProp(k, v) => {
                    if let Some(n) = &mut node {
                        prop_set(&mut n.props, *k, v.clone());
                    }
                }
                NodeEvent::RemoveProp(k) => {
                    if let Some(n) = &mut node {
                        prop_remove(&mut n.props, *k);
                    }
                }
                NodeEvent::AddLabel(l) => {
                    if let Some(n) = &mut node {
                        if let Err(i) = n.labels.binary_search(l) {
                            n.labels.insert(i, *l);
                        }
                    }
                }
                NodeEvent::RemoveLabel(l) => {
                    if let Some(n) = &mut node {
                        if let Ok(i) = n.labels.binary_search(l) {
                            n.labels.remove(i);
                        }
                    }
                }
            }
        }
        node
    }

    fn rel_state(&self, id: RelId, ts: Timestamp) -> Option<Relationship> {
        let events = self.rel_history.get(&id)?;
        let mut rel: Option<Relationship> = None;
        for (ets, e) in events {
            if *ets > ts {
                break;
            }
            match e {
                RelEvent::Added {
                    src,
                    tgt,
                    label,
                    props,
                } => rel = Some(Relationship::new(id, *src, *tgt, *label, props.clone())),
                RelEvent::Deleted => rel = None,
                RelEvent::SetProp(k, v) => {
                    if let Some(r) = &mut rel {
                        prop_set(&mut r.props, *k, v.clone());
                    }
                }
                RelEvent::RemoveProp(k) => {
                    if let Some(r) = &mut rel {
                        prop_remove(&mut r.props, *k);
                    }
                }
            }
        }
        rel
    }

    /// The visibility check the paper calls out: linearly scan both
    /// endpoints' relationship-update vectors (`2·|U_R^n|` work).
    fn endpoints_visible(&self, src: NodeId, tgt: NodeId, rel: RelId, ts: Timestamp) -> bool {
        let mut ok = 0;
        for endpoint in [src, tgt] {
            let Some(updates) = self.node_rel_updates.get(&endpoint) else {
                return false;
            };
            let mut alive = false;
            // Full linear scan — this is the cost profile being modeled.
            for (uts, rid, added) in updates {
                if *uts > ts {
                    continue;
                }
                if *rid == rel {
                    alive = *added;
                }
            }
            if alive {
                ok += 1;
            }
        }
        ok == 2 || (src == tgt && ok >= 1)
    }
}

impl TemporalBackend for RaphtoryLike {
    fn name(&self) -> &'static str {
        "raphtory-like"
    }

    fn apply(&mut self, ts: Timestamp, op: &Update) {
        self.updates += 1;
        match op {
            Update::AddNode { id, labels, props } => {
                self.node_history.entry(*id).or_default().push((
                    ts,
                    NodeEvent::Added {
                        labels: labels.clone(),
                        props: props.clone(),
                    },
                ));
                self.node_rel_updates.entry(*id).or_default();
            }
            Update::DeleteNode { id } => {
                self.node_history
                    .entry(*id)
                    .or_default()
                    .push((ts, NodeEvent::Deleted));
            }
            Update::AddRel {
                id,
                src,
                tgt,
                label,
                props,
            } => {
                // Multigraph restriction: drop parallel edges.
                if self.live_pairs.contains_key(&(*src, *tgt)) {
                    self.dropped_multi += 1;
                    self.updates -= 1;
                    return;
                }
                self.live_pairs.insert((*src, *tgt), *id);
                self.rel_history.entry(*id).or_default().push((
                    ts,
                    RelEvent::Added {
                        src: *src,
                        tgt: *tgt,
                        label: *label,
                        props: props.clone(),
                    },
                ));
                self.node_rel_updates
                    .entry(*src)
                    .or_default()
                    .push((ts, *id, true));
                if src != tgt {
                    self.node_rel_updates
                        .entry(*tgt)
                        .or_default()
                        .push((ts, *id, true));
                }
            }
            Update::DeleteRel { id } => {
                let Some((src, tgt)) = self.rel_endpoints(*id) else {
                    self.updates -= 1;
                    return;
                };
                if self.live_pairs.get(&(src, tgt)) == Some(id) {
                    self.live_pairs.remove(&(src, tgt));
                }
                self.rel_history
                    .entry(*id)
                    .or_default()
                    .push((ts, RelEvent::Deleted));
                self.node_rel_updates
                    .entry(src)
                    .or_default()
                    .push((ts, *id, false));
                if src != tgt {
                    self.node_rel_updates
                        .entry(tgt)
                        .or_default()
                        .push((ts, *id, false));
                }
            }
            Update::SetNodeProp { id, key, value } => {
                self.node_history
                    .entry(*id)
                    .or_default()
                    .push((ts, NodeEvent::SetProp(*key, value.clone())));
            }
            Update::RemoveNodeProp { id, key } => {
                self.node_history
                    .entry(*id)
                    .or_default()
                    .push((ts, NodeEvent::RemoveProp(*key)));
            }
            Update::AddLabel { id, label } => {
                self.node_history
                    .entry(*id)
                    .or_default()
                    .push((ts, NodeEvent::AddLabel(*label)));
            }
            Update::RemoveLabel { id, label } => {
                self.node_history
                    .entry(*id)
                    .or_default()
                    .push((ts, NodeEvent::RemoveLabel(*label)));
            }
            Update::SetRelProp { id, key, value } => {
                self.rel_history
                    .entry(*id)
                    .or_default()
                    .push((ts, RelEvent::SetProp(*key, value.clone())));
            }
            Update::RemoveRelProp { id, key } => {
                self.rel_history
                    .entry(*id)
                    .or_default()
                    .push((ts, RelEvent::RemoveProp(*key)));
            }
        }
    }

    fn rel_at(&self, id: RelId, ts: Timestamp) -> Option<Relationship> {
        let rel = self.rel_state(id, ts)?;
        // The expensive visibility validation (2·|U_R^n|).
        self.endpoints_visible(rel.src, rel.tgt, id, ts)
            .then_some(rel)
    }

    fn snapshot_at(&self, ts: Timestamp) -> Graph {
        // All-history scan + filter (|U|).
        let mut g = Graph::new();
        for &id in self.node_history.keys() {
            if let Some(n) = self.node_state(id, ts) {
                g.apply(&Update::AddNode {
                    id,
                    labels: n.labels,
                    props: n.props,
                })
                .expect("replay is consistent");
            }
        }
        for &id in self.rel_history.keys() {
            if let Some(r) = self.rel_state(id, ts) {
                if g.has_node(r.src) && g.has_node(r.tgt) {
                    g.apply(&Update::AddRel {
                        id,
                        src: r.src,
                        tgt: r.tgt,
                        label: r.label,
                        props: r.props,
                    })
                    .expect("endpoints checked");
                }
            }
        }
        g
    }

    fn heap_size(&self) -> usize {
        let node_events: usize = self.node_history.values().map(|v| v.len() * 48).sum();
        let rel_events: usize = self.rel_history.values().map(|v| v.len() * 64).sum();
        let adj: usize = self.node_rel_updates.values().map(|v| v.len() * 24).sum();
        node_events + rel_events + adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: NodeId::new(i),
            labels: vec![],
            props: vec![],
        }
    }

    fn add_rel(id: u64, s: u64, t: u64) -> Update {
        Update::AddRel {
            id: RelId::new(id),
            src: NodeId::new(s),
            tgt: NodeId::new(t),
            label: None,
            props: vec![],
        }
    }

    #[test]
    fn point_and_snapshot_queries() {
        let mut r = RaphtoryLike::new();
        r.apply(1, &add_node(1));
        r.apply(2, &add_node(2));
        r.apply(3, &add_rel(0, 1, 2));
        r.apply(5, &Update::DeleteRel { id: RelId::new(0) });
        assert!(r.rel_at(RelId::new(0), 3).is_some());
        assert!(r.rel_at(RelId::new(0), 5).is_none());
        assert!(r.rel_at(RelId::new(0), 2).is_none());
        let g3 = r.snapshot_at(3);
        assert_eq!((g3.node_count(), g3.rel_count()), (2, 1));
        let g5 = r.snapshot_at(5);
        assert_eq!((g5.node_count(), g5.rel_count()), (2, 0));
    }

    #[test]
    fn multigraph_restriction_drops_parallel_edges() {
        let mut r = RaphtoryLike::new();
        r.apply(1, &add_node(1));
        r.apply(2, &add_node(2));
        r.apply(3, &add_rel(0, 1, 2));
        r.apply(4, &add_rel(1, 1, 2)); // parallel edge: dropped
        assert_eq!(r.dropped_multigraph_rels(), 1);
        assert_eq!(r.snapshot_at(10).rel_count(), 1);
        // After deleting the live edge a new pair is accepted.
        r.apply(5, &Update::DeleteRel { id: RelId::new(0) });
        r.apply(6, &add_rel(2, 1, 2));
        assert_eq!(r.snapshot_at(10).rel_count(), 1);
        assert!(r.rel_at(RelId::new(2), 10).is_some());
    }

    #[test]
    fn property_churn_replays() {
        let mut r = RaphtoryLike::new();
        let k = lpg::StrId::new(0);
        r.apply(1, &add_node(1));
        r.apply(
            2,
            &Update::SetNodeProp {
                id: NodeId::new(1),
                key: k,
                value: lpg::PropertyValue::Int(5),
            },
        );
        let n = r.node_state(NodeId::new(1), 2).unwrap();
        assert_eq!(n.prop(k), Some(&lpg::PropertyValue::Int(5)));
        let n = r.node_state(NodeId::new(1), 1).unwrap();
        assert_eq!(n.prop(k), None);
    }
}
