//! # aion-baselines — reimplementations of the paper's comparison systems
//!
//! The paper evaluates Aion against Raphtory (fine-grained in-memory
//! storage), Gradoop (model-based storage over table scans + joins) and
//! plain Neo4j (no temporal capabilities). None of those systems can be
//! linked here, so this crate re-implements each system's *storage and
//! query strategy* faithfully enough that the Table 4 complexity profile —
//! the thing the paper's comparisons hinge on — is reproduced:
//!
//! | system   | space | rel retrieval | snapshot retrieval |
//! |----------|-------|---------------|--------------------|
//! | Raphtory | |U|   | `2·|U_R^n|`   | `|U|` (all-history scan) |
//! | Gradoop  | |U|   | `|U_R|`       | `|U|` (scan + 2 joins)   |
//!
//! * [`raphtory`] — per-entity update vectors; point lookups linearly scan
//!   the endpoint nodes' relationship histories; snapshots scan everything.
//!   Like the real system (v0.5.6), it does **not** support multigraphs:
//!   a second relationship between the same (src, tgt) pair is dropped.
//! * [`gradoop`] — temporal node/relationship row tables; a snapshot is a
//!   scan + filter over both tables followed by two hash semi-joins that
//!   remove dangling relationships (where the real system spends ~80 % of
//!   its time, Sec. 6.2).
//! * [`classic`] — a latest-version-only store: the plain Neo4j stand-in
//!   used to normalize ingestion overhead (Fig. 9) and as the recompute
//!   baseline for incremental analytics (Figs. 12/14).
//!
//! All three implement [`TemporalBackend`] so the benchmark harness drives
//! them interchangeably.

pub mod classic;
pub mod gradoop;
pub mod raphtory;

use lpg::{Graph, RelId, Relationship, Timestamp, Update};

/// The uniform surface the benchmark harness drives.
pub trait TemporalBackend {
    /// Human-readable system name for reports.
    fn name(&self) -> &'static str;

    /// Ingests one update at `ts` (timestamps non-decreasing).
    fn apply(&mut self, ts: Timestamp, op: &Update);

    /// Point query: the relationship state valid at `ts`.
    fn rel_at(&self, id: RelId, ts: Timestamp) -> Option<Relationship>;

    /// Global query: the full graph valid at `ts`.
    fn snapshot_at(&self, ts: Timestamp) -> Graph;

    /// Estimated resident bytes (space accounting).
    fn heap_size(&self) -> usize;
}

pub use classic::ClassicStore;
pub use gradoop::GradoopLike;
pub use raphtory::RaphtoryLike;
