//! A Gradoop-style model-based temporal engine.
//!
//! "Gradoop is an analytical engine that supports distributed execution
//! over the model-based approach at the significant cost of performing an
//! all-history scan to retrieve valid graph parts" (Sec. 2.2). Storage is
//! two temporal row tables; a snapshot is a scan + filter over both,
//! "followed by two parallel join transformations required to remove
//! dangling relationships" — where "Gradoop spends nearly 80 % of its
//! time" (Sec. 6.2).

use crate::TemporalBackend;
use lpg::{prop_remove, prop_set};
use lpg::{Graph, NodeId, RelId, Relationship, Timestamp, Update, TS_MAX};
use std::collections::HashSet;

/// One temporal node row.
#[derive(Clone, Debug)]
struct NodeRow {
    id: NodeId,
    from: Timestamp,
    to: Timestamp,
    labels: Vec<lpg::StrId>,
    props: lpg::Props,
}

/// One temporal relationship row.
#[derive(Clone, Debug)]
struct RelRow {
    id: RelId,
    from: Timestamp,
    to: Timestamp,
    src: NodeId,
    tgt: NodeId,
    label: Option<lpg::StrId>,
    props: lpg::Props,
}

/// The model-based store: append-only temporal tables.
#[derive(Default)]
pub struct GradoopLike {
    nodes: Vec<NodeRow>,
    rels: Vec<RelRow>,
    updates: u64,
    /// Rows scanned by the last snapshot (profiling the scan phase).
    pub last_scan_rows: std::cell::Cell<u64>,
    /// Probe operations in the last snapshot's dangling-edge joins.
    pub last_join_probes: std::cell::Cell<u64>,
}

impl GradoopLike {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates ingested.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Closes the open row of an entity (model-based deletion).
    fn close_node(&mut self, id: NodeId, ts: Timestamp) {
        // Reverse scan: the open row is near the end for ordered ingest.
        for row in self.nodes.iter_mut().rev() {
            if row.id == id && row.to == TS_MAX {
                row.to = ts;
                return;
            }
        }
    }

    fn close_rel(&mut self, id: RelId, ts: Timestamp) {
        for row in self.rels.iter_mut().rev() {
            if row.id == id && row.to == TS_MAX {
                row.to = ts;
                return;
            }
        }
    }

    /// Model-based modify: close the current row and open a new version —
    /// historical data becomes extra rows in the table.
    fn reversion_node(&mut self, id: NodeId, ts: Timestamp, f: impl FnOnce(&mut NodeRow)) {
        let open = self
            .nodes
            .iter()
            .rev()
            .find(|r| r.id == id && r.to == TS_MAX)
            .cloned();
        if let Some(mut row) = open {
            self.close_node(id, ts);
            row.from = ts;
            row.to = TS_MAX;
            f(&mut row);
            self.nodes.push(row);
        }
    }

    fn reversion_rel(&mut self, id: RelId, ts: Timestamp, f: impl FnOnce(&mut RelRow)) {
        let open = self
            .rels
            .iter()
            .rev()
            .find(|r| r.id == id && r.to == TS_MAX)
            .cloned();
        if let Some(mut row) = open {
            self.close_rel(id, ts);
            row.from = ts;
            row.to = TS_MAX;
            f(&mut row);
            self.rels.push(row);
        }
    }
}

impl TemporalBackend for GradoopLike {
    fn name(&self) -> &'static str {
        "gradoop-like"
    }

    fn apply(&mut self, ts: Timestamp, op: &Update) {
        self.updates += 1;
        match op {
            Update::AddNode { id, labels, props } => self.nodes.push(NodeRow {
                id: *id,
                from: ts,
                to: TS_MAX,
                labels: labels.clone(),
                props: props.clone(),
            }),
            Update::DeleteNode { id } => self.close_node(*id, ts),
            Update::AddRel {
                id,
                src,
                tgt,
                label,
                props,
            } => self.rels.push(RelRow {
                id: *id,
                from: ts,
                to: TS_MAX,
                src: *src,
                tgt: *tgt,
                label: *label,
                props: props.clone(),
            }),
            Update::DeleteRel { id } => self.close_rel(*id, ts),
            Update::SetNodeProp { id, key, value } => self.reversion_node(*id, ts, |row| {
                prop_set(&mut row.props, *key, value.clone());
            }),
            Update::RemoveNodeProp { id, key } => self.reversion_node(*id, ts, |row| {
                prop_remove(&mut row.props, *key);
            }),
            Update::AddLabel { id, label } => self.reversion_node(*id, ts, |row| {
                if let Err(i) = row.labels.binary_search(label) {
                    row.labels.insert(i, *label);
                }
            }),
            Update::RemoveLabel { id, label } => self.reversion_node(*id, ts, |row| {
                if let Ok(i) = row.labels.binary_search(label) {
                    row.labels.remove(i);
                }
            }),
            Update::SetRelProp { id, key, value } => self.reversion_rel(*id, ts, |row| {
                prop_set(&mut row.props, *key, value.clone());
            }),
            Update::RemoveRelProp { id, key } => self.reversion_rel(*id, ts, |row| {
                prop_remove(&mut row.props, *key);
            }),
        }
    }

    fn rel_at(&self, id: RelId, ts: Timestamp) -> Option<Relationship> {
        // Full relationship-table scan (|U_R|) — the model-based cost.
        let mut hit: Option<&RelRow> = None;
        for row in &self.rels {
            if row.id == id && row.from <= ts && ts < row.to {
                hit = Some(row);
            }
        }
        let row = hit?;
        // Validate endpoints with node-table scans, as the model demands.
        let src_ok = self
            .nodes
            .iter()
            .any(|n| n.id == row.src && n.from <= ts && ts < n.to);
        let tgt_ok = self
            .nodes
            .iter()
            .any(|n| n.id == row.tgt && n.from <= ts && ts < n.to);
        (src_ok && tgt_ok)
            .then(|| Relationship::new(row.id, row.src, row.tgt, row.label, row.props.clone()))
    }

    fn snapshot_at(&self, ts: Timestamp) -> Graph {
        let mut scan_rows = 0u64;
        let mut probes = 0u64;
        // Phase 1: scan + filter both tables.
        let valid_nodes: Vec<&NodeRow> = self
            .nodes
            .iter()
            .inspect(|_| scan_rows += 1)
            .filter(|r| r.from <= ts && ts < r.to)
            .collect();
        let valid_rels: Vec<&RelRow> = self
            .rels
            .iter()
            .inspect(|_| scan_rows += 1)
            .filter(|r| r.from <= ts && ts < r.to)
            .collect();
        // Phase 2: two semi-joins removing dangling relationships.
        let node_ids: HashSet<NodeId> = valid_nodes.iter().map(|r| r.id).collect();
        let joined: Vec<&&RelRow> = valid_rels
            .iter()
            .inspect(|_| probes += 1)
            .filter(|r| node_ids.contains(&r.src))
            .collect();
        let joined: Vec<&&RelRow> = joined
            .into_iter()
            .inspect(|_| probes += 1)
            .filter(|r| node_ids.contains(&r.tgt))
            .collect();
        self.last_scan_rows.set(scan_rows);
        self.last_join_probes.set(probes);
        // Materialize.
        let mut g = Graph::new();
        for n in valid_nodes {
            g.apply(&Update::AddNode {
                id: n.id,
                labels: n.labels.clone(),
                props: n.props.clone(),
            })
            .expect("node rows are disjoint");
        }
        for r in joined {
            g.apply(&Update::AddRel {
                id: r.id,
                src: r.src,
                tgt: r.tgt,
                label: r.label,
                props: r.props.clone(),
            })
            .expect("joined rels have endpoints");
        }
        g
    }

    fn heap_size(&self) -> usize {
        self.nodes.len() * 96 + self.rels.len() * 120
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: NodeId::new(i),
            labels: vec![],
            props: vec![],
        }
    }

    fn add_rel(id: u64, s: u64, t: u64) -> Update {
        Update::AddRel {
            id: RelId::new(id),
            src: NodeId::new(s),
            tgt: NodeId::new(t),
            label: None,
            props: vec![],
        }
    }

    #[test]
    fn snapshot_filters_and_joins() {
        let mut g = GradoopLike::new();
        g.apply(1, &add_node(1));
        g.apply(2, &add_node(2));
        g.apply(3, &add_rel(0, 1, 2));
        g.apply(5, &Update::DeleteNode { id: NodeId::new(2) });
        // At ts 5 node 2 is gone: the join drops the dangling rel.
        let snap = g.snapshot_at(5);
        assert_eq!(snap.node_count(), 1);
        assert_eq!(snap.rel_count(), 0);
        assert!(g.last_scan_rows.get() >= 3);
        // At ts 4 everything is valid.
        let snap = g.snapshot_at(4);
        assert_eq!((snap.node_count(), snap.rel_count()), (2, 1));
    }

    #[test]
    fn point_query_scans_table() {
        let mut g = GradoopLike::new();
        g.apply(1, &add_node(1));
        g.apply(2, &add_node(2));
        g.apply(3, &add_rel(0, 1, 2));
        g.apply(6, &Update::DeleteRel { id: RelId::new(0) });
        assert!(g.rel_at(RelId::new(0), 4).is_some());
        assert!(g.rel_at(RelId::new(0), 6).is_none());
        assert!(g.rel_at(RelId::new(0), 2).is_none());
    }

    #[test]
    fn property_updates_create_new_rows() {
        let mut g = GradoopLike::new();
        let k = lpg::StrId::new(3);
        g.apply(1, &add_node(1));
        g.apply(
            4,
            &Update::SetNodeProp {
                id: NodeId::new(1),
                key: k,
                value: lpg::PropertyValue::Int(9),
            },
        );
        assert_eq!(g.nodes.len(), 2, "history rows accumulate");
        let old = g.snapshot_at(2);
        assert_eq!(old.node(NodeId::new(1)).unwrap().prop(k), None);
        let new = g.snapshot_at(4);
        assert_eq!(
            new.node(NodeId::new(1)).unwrap().prop(k),
            Some(&lpg::PropertyValue::Int(9))
        );
    }
}
