//! Pagination equivalence battery: for every page size, draining a paged
//! execution must concatenate to *exactly* the unpaged result — which in
//! turn must match the materializing reference executor. Cursor tokens
//! must survive round-trips and reject every truncation and bit-flip
//! rather than mis-resuming.

use aion::{Aion, AionConfig};
use lpg::GraphError;
use proptest::prelude::*;
use query::{execute, execute_paged, execute_reference, ExecBudget, Params, QueryResult};
use tempfile::tempdir;

fn db() -> (tempfile::TempDir, Aion) {
    let dir = tempdir().unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    (dir, db)
}

fn exec(db: &Aion, q: &str) -> QueryResult {
    execute(db, q, &Params::new()).unwrap_or_else(|e| panic!("{q}: {e}"))
}

/// Seeds `n` nodes: even ids are `Person`, odd ids are `Org`, each with a
/// `v` property equal to its id. Waits for the lineage index so the
/// streaming path sees everything.
fn seed(db: &Aion, n: u64) {
    for i in 0..n {
        let label = if i % 2 == 0 { "Person" } else { "Org" };
        exec(db, &format!("CREATE (x:{label} {{_id: {i}, v: {i}}})"));
    }
    db.lineage_barrier(db.latest_ts());
}

/// Drains a paged execution at `page_size`, asserting each page is at
/// most one page of rows, then returns the concatenation.
fn drain_pages(db: &Aion, q: &str, page_size: usize) -> QueryResult {
    let params = Params::new();
    let mut cursor: Option<Vec<u8>> = None;
    let mut out: Option<QueryResult> = None;
    let mut pinned = None;
    for _round in 0..10_000 {
        let page = execute_paged(
            db,
            q,
            &params,
            ExecBudget::unlimited(),
            page_size,
            cursor.as_deref(),
        )
        .unwrap_or_else(|e| panic!("{q} (page_size {page_size}): {e}"));
        assert!(
            page.result.rows.len() <= page_size.max(1),
            "page overflowed: {} rows at page_size {page_size}",
            page.result.rows.len()
        );
        // Every page of one drain is pinned to the same snapshot.
        match pinned {
            None => pinned = Some(page.snapshot_ts),
            Some(ts) => assert_eq!(ts, page.snapshot_ts, "snapshot drifted between pages"),
        }
        match &mut out {
            None => out = Some(page.result),
            Some(acc) => {
                assert_eq!(acc.columns, page.result.columns);
                acc.rows.extend(page.result.rows);
            }
        }
        match page.cursor {
            Some(c) => cursor = Some(c),
            None => return out.expect("at least one page"),
        }
    }
    panic!("paged drain of {q} did not terminate");
}

/// The query shapes under test: streaming-eligible scans (with and
/// without label filters, predicates, projections, LIMIT and an id
/// anchor) plus a non-streamable ORDER BY that exercises the
/// materialized-offset fallback.
fn queries(limit: usize, anchor: u64, threshold: u64) -> Vec<String> {
    vec![
        "MATCH (n) RETURN n".into(),
        "MATCH (n:Person) RETURN n".into(),
        format!("MATCH (n) RETURN id(n) LIMIT {limit}"),
        format!("MATCH (n:Person) WHERE n.v >= {threshold} RETURN n.v LIMIT {limit}"),
        format!("MATCH (n) WHERE id(n) = {anchor} RETURN n"),
        "MATCH (n:Org) RETURN n.v ORDER BY n.v DESC".into(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Paging with every page size in {1, 3, 7, ∞} concatenates to the
    /// exact unpaged result, which itself matches the materializing
    /// reference executor — order, dedup and LIMIT interaction included.
    #[test]
    fn paged_concat_equals_unpaged(
        n in 1u64..24,
        limit in 1usize..20,
        anchor in 0u64..30,
        threshold in 0u64..24,
    ) {
        let (_d, db) = db();
        seed(&db, n);
        let params = Params::new();
        for q in queries(limit, anchor, threshold) {
            let oracle = execute_reference(&db, &q, &params)
                .unwrap_or_else(|e| panic!("{q}: {e}"));
            let unpaged = execute(&db, &q, &params)
                .unwrap_or_else(|e| panic!("{q}: {e}"));
            prop_assert_eq!(
                &unpaged, &oracle,
                "streaming executor diverged from reference on {}", q
            );
            for page_size in [1usize, 3, 7, usize::MAX] {
                let paged = drain_pages(&db, &q, page_size);
                prop_assert_eq!(
                    &paged, &oracle,
                    "page_size {} diverged on {}", page_size, q
                );
            }
        }
    }

    /// Corrupted cursors — every truncation and every single-bit flip —
    /// are rejected with a typed error; resuming from garbage never
    /// succeeds (which could silently skip or duplicate rows).
    #[test]
    fn corrupted_cursors_always_rejected(n in 4u64..16) {
        let (_d, db) = db();
        seed(&db, n);
        let params = Params::new();
        let q = "MATCH (n) RETURN n";
        let first = execute_paged(&db, q, &params, ExecBudget::unlimited(), 2, None).unwrap();
        let token = first.cursor.expect("more than one page must remain");

        // Round-trip sanity: the untouched token resumes fine.
        execute_paged(&db, q, &params, ExecBudget::unlimited(), 2, Some(&token)).unwrap();

        for cut in 0..token.len() {
            let r = execute_paged(&db, q, &params, ExecBudget::unlimited(), 2, Some(&token[..cut]));
            prop_assert!(
                matches!(r, Err(GraphError::CursorInvalid(_))),
                "truncation at {} must be CursorInvalid", cut
            );
        }
        for byte in 0..token.len() {
            for bit in 0..8 {
                let mut bad = token.clone();
                bad[byte] ^= 1 << bit;
                let r = execute_paged(&db, q, &params, ExecBudget::unlimited(), 2, Some(&bad));
                prop_assert!(
                    matches!(r, Err(GraphError::CursorInvalid(_))),
                    "bit flip at byte {} bit {} must be CursorInvalid", byte, bit
                );
            }
        }

        // A valid token from one query must not resume a different query.
        let other = "MATCH (n) RETURN id(n)";
        let r = execute_paged(&db, other, &params, ExecBudget::unlimited(), 2, Some(&token));
        prop_assert!(matches!(r, Err(GraphError::CursorInvalid(_))));
    }
}

/// LIMIT spanning multiple pages: the pages stop exactly at the limit,
/// never over-serving, and the final page carries no cursor.
#[test]
fn limit_exhausts_across_pages() {
    let (_d, db) = db();
    seed(&db, 20);
    let q = "MATCH (n) RETURN id(n) LIMIT 10";
    for page_size in [1usize, 3, 7, usize::MAX] {
        let got = drain_pages(&db, q, page_size);
        assert_eq!(got.rows.len(), 10, "page_size {page_size}");
        let oracle = execute_reference(&db, q, &Params::new()).unwrap();
        assert_eq!(got, oracle, "page_size {page_size}");
    }
}

/// Writes refuse to page: there is no meaningful cursor over a mutation.
#[test]
fn write_queries_cannot_be_paged() {
    let (_d, db) = db();
    let r = execute_paged(
        &db,
        "CREATE (n:Person {_id: 0})",
        &Params::new(),
        ExecBudget::unlimited(),
        4,
        None,
    );
    assert!(matches!(r, Err(GraphError::ExecError(_))), "got {r:?}");
}
