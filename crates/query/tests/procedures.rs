//! CALL procedure tests: the temporal procedures of Sec. 5.1 invoked from
//! Cypher, incremental and classic modes agreeing.

use aion::{Aion, AionConfig};
use query::{execute, Params, Value};
use tempfile::tempdir;

fn seeded_db() -> (tempfile::TempDir, Aion, u64) {
    let dir = tempdir().unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    let weight = db.intern("weight");
    for i in 0..30u64 {
        db.write(|txn| txn.add_node(lpg::NodeId::new(i), vec![], vec![]))
            .unwrap();
    }
    for i in 0..30u64 {
        db.write(|txn| {
            txn.add_rel(
                lpg::RelId::new(i),
                lpg::NodeId::new(i),
                lpg::NodeId::new((i + 1) % 30),
                None,
                vec![(weight, lpg::PropertyValue::Float(i as f64))],
            )
        })
        .unwrap();
    }
    let last = db.latest_ts();
    db.lineage_barrier(last);
    (dir, db, last)
}

#[test]
fn call_avg_series() {
    let (_d, db, last) = seeded_db();
    let q = format!("CALL aion.avg('weight', {}, {}, 10)", last / 2, last + 1);
    let r = execute(&db, &q, &Params::new()).unwrap();
    assert_eq!(r.columns, vec!["ts".to_string(), "avg".to_string()]);
    assert!(r.rows.len() >= 2);
    // Rows are (Int ts, Float avg) with increasing ts.
    let ts: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert!(ts.windows(2).all(|w| w[0] < w[1]));
    // Classic mode returns the same values.
    let qc = format!(
        "CALL aion.avg('weight', {}, {}, 10, 'classic')",
        last / 2,
        last + 1
    );
    let rc = execute(&db, &qc, &Params::new()).unwrap();
    assert_eq!(r.rows.len(), rc.rows.len());
    for (a, b) in r.rows.iter().zip(rc.rows.iter()) {
        match (&a[1], &b[1]) {
            (Value::Float(x), Value::Float(y)) => assert!((x - y).abs() < 1e-9),
            (Value::Null, Value::Null) => {}
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn call_bfs_and_pagerank() {
    let (_d, db, last) = seeded_db();
    let r = execute(
        &db,
        &format!("CALL aion.bfs(0, {}, {}, 15)", last / 2, last + 1),
        &Params::new(),
    )
    .unwrap();
    assert_eq!(r.columns[1], "reached");
    // Reachability grows (ring is being completed).
    let reached: Vec<i64> = r.rows.iter().map(|row| row[1].as_int().unwrap()).collect();
    assert!(reached.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(
        *reached.last().unwrap(),
        30,
        "full ring reachable at the end"
    );

    let r = execute(
        &db,
        &format!("CALL aion.pagerank({}, {}, 20)", last / 2, last + 1),
        &Params::new(),
    )
    .unwrap();
    assert_eq!(
        r.columns,
        vec!["ts".to_string(), "topNode".to_string(), "rank".to_string()]
    );
    assert!(!r.rows.is_empty());
}

#[test]
fn call_errors() {
    let (_d, db, _) = seeded_db();
    assert!(execute(&db, "CALL aion.nope(1, 2)", &Params::new()).is_err());
    assert!(execute(&db, "CALL aion.avg(1, 2, 3, 4)", &Params::new()).is_err());
    assert!(execute(&db, "CALL aion.bfs('x', 1, 2, 3)", &Params::new()).is_err());
}

#[test]
fn call_diff_and_window() {
    let (_d, db, last) = seeded_db();
    // Diff over the relationship-insert half of the history.
    let r = execute(
        &db,
        &format!("CALL aion.diff({}, {})", 31, last + 1),
        &Params::new(),
    )
    .unwrap();
    assert_eq!(
        r.columns,
        vec!["ts".to_string(), "op".to_string(), "entity".to_string()]
    );
    assert_eq!(r.rows.len(), 30, "thirty rel inserts");
    assert!(r
        .rows
        .iter()
        .all(|row| row[1] == Value::Str("addRel".into())));
    // Window over the full history contains every node.
    let r = execute(
        &db,
        &format!("CALL aion.window(1, {})", last + 1),
        &Params::new(),
    )
    .unwrap();
    assert_eq!(r.rows.len(), 30);
    // Window before the rels were added still contains the early nodes.
    let r = execute(&db, "CALL aion.window(1, 10)", &Params::new()).unwrap();
    assert_eq!(r.rows.len(), 9);
}
