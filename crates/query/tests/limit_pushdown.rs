//! LIMIT pushdown regression gate: `RETURN … LIMIT k` over a large graph
//! must touch O(k) lineage index entries — not the whole index — and a
//! paged drain must never materialize more than one page of rows at a
//! time. Both are asserted through the process-wide obs counters, so the
//! two tests serialize on a lock to keep their deltas isolated.

use aion::{Aion, AionConfig};
use lpg::{NodeId, RelId};
use query::{execute, execute_paged, ExecBudget, Params, QueryResult};
use std::sync::Mutex;
use tempfile::tempdir;

/// Serializes tests that read deltas of process-global counters.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

const NODES: u64 = 20_000;
const RELS_PER_NODE: u64 = 3; // 60k edges

/// Builds the 20k-node / 60k-edge ring lattice through the transaction
/// API (Cypher would dominate the test's runtime), then waits for the
/// lineage index so the streaming scan path serves the reads.
fn big_db() -> (tempfile::TempDir, Aion) {
    let dir = tempdir().unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    for chunk in (0..NODES).collect::<Vec<u64>>().chunks(1000) {
        let ids = chunk.to_vec();
        db.write(|txn| {
            for i in &ids {
                txn.add_node(NodeId::new(*i), vec![], vec![])?;
            }
            Ok(())
        })
        .unwrap();
    }
    for chunk in (0..NODES).collect::<Vec<u64>>().chunks(1000) {
        let ids = chunk.to_vec();
        db.write(|txn| {
            for i in &ids {
                for k in 0..RELS_PER_NODE {
                    txn.add_rel(
                        RelId::new(i * RELS_PER_NODE + k),
                        NodeId::new(*i),
                        NodeId::new((i + k + 1) % NODES),
                        None,
                        vec![],
                    )?;
                }
            }
            Ok(())
        })
        .unwrap();
    }
    db.lineage_barrier(db.latest_ts());
    (dir, db)
}

#[test]
fn limit_touches_o_of_limit_index_entries() {
    let _guard = METRICS_LOCK.lock().unwrap();
    let (_d, db) = big_db();
    let touched = obs::counter("lineage.stream.entries_touched");
    let params = Params::new();

    // LIMIT 10: the stream stops after ten entities, so only a handful
    // of index entries are ever examined.
    let before = touched.get();
    let r = execute(&db, "MATCH (n) RETURN id(n) LIMIT 10", &params).unwrap();
    assert_eq!(r.rows.len(), 10);
    let limited = touched.get() - before;
    assert!(
        (10..=64).contains(&limited),
        "LIMIT 10 must touch O(LIMIT) index entries, touched {limited}"
    );

    // Control: without LIMIT the same scan walks the full index, proving
    // the counter measures what the assertion above relies on.
    let before = touched.get();
    let r = execute(&db, "MATCH (n) RETURN id(n)", &params).unwrap();
    assert_eq!(r.rows.len(), NODES as usize);
    let full = touched.get() - before;
    assert!(
        full >= NODES,
        "unlimited scan should touch at least one entry per node, touched {full}"
    );
}

#[test]
fn paged_scan_materializes_at_most_one_page() {
    let _guard = METRICS_LOCK.lock().unwrap();
    let (_d, db) = big_db();
    let streamed = obs::counter("query.rows_streamed");
    let params = Params::new();
    let q = "MATCH (n) RETURN id(n)";

    let mut total = 0usize;
    let mut cursor: Option<Vec<u8>> = None;
    let mut started = false;
    while !started || cursor.is_some() {
        started = true;
        let before = streamed.get();
        let page = execute_paged(
            &db,
            q,
            &params,
            ExecBudget::unlimited(),
            64,
            cursor.take().as_deref(),
        )
        .unwrap();
        let delta = streamed.get() - before;
        assert!(
            delta <= 64,
            "one page must stream at most page_size rows, streamed {delta}"
        );
        assert!(page.result.rows.len() <= 64);
        assert_eq!(page.result.rows.len() as u64, delta);
        total += page.result.rows.len();
        cursor = page.cursor;
    }
    assert_eq!(total, NODES as usize);

    // The paged drain and the one-shot scan agree end to end.
    let full: QueryResult = execute(&db, q, &params).unwrap();
    assert_eq!(full.rows.len(), total);
}
