//! End-to-end temporal Cypher: the Fig. 1 query shapes plus writes, all
//! executed against a real Aion instance.

use aion::{Aion, AionConfig};
use query::{execute, Params, Value};
use tempfile::tempdir;

fn db() -> (tempfile::TempDir, Aion) {
    let dir = tempdir().unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    (dir, db)
}

fn exec(db: &Aion, q: &str) -> query::QueryResult {
    execute(db, q, &Params::new()).unwrap_or_else(|e| panic!("{q}: {e}"))
}

/// Builds a five-node chain with labels and properties via Cypher alone.
fn seed(db: &Aion) -> u64 {
    for i in 0..5 {
        exec(
            db,
            &format!(
                "CREATE (n:Person {{_id: {i}, age: {}, name: 'p{i}'}})",
                20 + i
            ),
        );
    }
    for i in 0..4 {
        exec(
            db,
            &format!(
                "MATCH (a), (b) WHERE id(a) = {i} AND id(b) = {} CREATE (a)-[:KNOWS {{_id: {i}}}]->(b)",
                i + 1
            ),
        );
    }
    db.latest_ts()
}

#[test]
fn create_and_point_read() {
    let (_d, db) = db();
    let last = seed(&db);
    db.lineage_barrier(last);
    let r = exec(&db, "MATCH (n) WHERE id(n) = 2 RETURN n");
    assert_eq!(r.rows.len(), 1);
    let Value::Node {
        id, labels, props, ..
    } = &r.rows[0][0]
    else {
        panic!("expected node, got {:?}", r.rows[0][0])
    };
    assert_eq!(*id, 2);
    assert_eq!(labels, &vec!["Person".to_string()]);
    assert!(props.contains(&("age".to_string(), Value::Int(22))));
}

#[test]
fn parameterized_lookup() {
    let (_d, db) = db();
    let last = seed(&db);
    db.lineage_barrier(last);
    let mut params = Params::new();
    params.insert("id".into(), Value::Int(3));
    let r = execute(&db, "MATCH (n) WHERE id(n) = $id RETURN n.name", &params).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Str("p3".into())]]);
    // Missing parameter is an error.
    assert!(execute(
        &db,
        "MATCH (n) WHERE id(n) = $nope RETURN n",
        &Params::new()
    )
    .is_err());
}

#[test]
fn fig1a_history_between() {
    let (_d, db) = db();
    seed(&db);
    // Update node 1's property twice to create history.
    exec(&db, "MATCH (n) WHERE id(n) = 1 SET n.age = 99");
    exec(&db, "MATCH (n) WHERE id(n) = 1 SET n.age = 100");
    let last = db.latest_ts();
    db.lineage_barrier(last);
    let q = format!(
        "USE GDB FOR SYSTEM_TIME BETWEEN 1 AND {} MATCH (n) WHERE id(n) = 1 RETURN n",
        last + 1
    );
    let r = exec(&db, &q);
    assert_eq!(r.rows.len(), 3, "three versions of node 1");
    // Versions carry intervals.
    let Value::Node { valid, .. } = &r.rows[0][0] else {
        panic!()
    };
    assert!(valid.is_some());
}

#[test]
fn fig1b_nhop_lookup() {
    let (_d, db) = db();
    let last = seed(&db);
    db.lineage_barrier(last);
    let q = format!(
        "USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n)-[*3]->(m) WHERE id(n) = 0 RETURN m"
    );
    let r = exec(&db, &q);
    assert_eq!(r.rows.len(), 3, "nodes 1, 2, 3 within 3 hops");
}

#[test]
fn fig1c_bitemporal_lookup() {
    let (_d, db) = db();
    exec(
        &db,
        "CREATE (n:Event {_id: 50, _app_start: 100, _app_end: 200})",
    );
    exec(&db, "CREATE (n:Event {_id: 51, _app_start: 300})");
    let last = db.latest_ts();
    db.lineage_barrier(last);
    let q = format!(
        "USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n:Event) WHERE id(n) = 50 AND APPLICATION_TIME CONTAINED IN (120, 150) RETURN n"
    );
    assert_eq!(exec(&db, &q).rows.len(), 1);
    let q = format!(
        "USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n:Event) WHERE id(n) = 50 AND APPLICATION_TIME CONTAINED IN (250, 260) RETURN n"
    );
    assert_eq!(exec(&db, &q).rows.len(), 0);
    let q = format!(
        "USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n:Event) WHERE id(n) = 51 AND APPLICATION_TIME CONTAINED IN (350, 360) RETURN n"
    );
    assert_eq!(exec(&db, &q).rows.len(), 1, "open-ended app time");
}

#[test]
fn single_hop_with_rel_binding() {
    let (_d, db) = db();
    let last = seed(&db);
    db.lineage_barrier(last);
    let q = format!(
        "USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n)-[r:KNOWS]->(m) WHERE id(n) = 1 RETURN r, m"
    );
    let r = exec(&db, &q);
    assert_eq!(r.columns, vec!["r".to_string(), "m".to_string()]);
    assert_eq!(r.rows.len(), 1);
    let Value::Rel {
        src, tgt, rel_type, ..
    } = &r.rows[0][0]
    else {
        panic!()
    };
    assert_eq!((*src, *tgt), (1, 2));
    assert_eq!(rel_type.as_deref(), Some("KNOWS"));
    // Incoming direction.
    let q = format!(
        "USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n)<-[r]-(m) WHERE id(n) = 1 RETURN id(m)"
    );
    let r = exec(&db, &q);
    assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
}

#[test]
fn label_scan_and_count() {
    let (_d, db) = db();
    let last = seed(&db);
    db.lineage_barrier(last);
    let r = exec(&db, "MATCH (n:Person) RETURN count(n)");
    assert_eq!(r.rows, vec![vec![Value::Int(5)]]);
    let r = exec(&db, "MATCH (n:Robot) RETURN count(n)");
    assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
    // Property filter.
    let r = exec(&db, "MATCH (n:Person) WHERE n.age >= 22 RETURN count(n)");
    assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
}

#[test]
fn time_travel_scan() {
    let (_d, db) = db();
    seed(&db);
    let before_delete = db.latest_ts();
    exec(&db, "MATCH ()-[r]->() WHERE id(r) = 0 DELETE r");
    exec(&db, "MATCH (n) WHERE id(n) = 0 DELETE n");
    let after = db.latest_ts();
    db.lineage_barrier(after);
    // Now: 4 persons. Back then: 5.
    let now = exec(&db, "MATCH (n:Person) RETURN count(n)");
    assert_eq!(now.rows, vec![vec![Value::Int(4)]]);
    let then = exec(
        &db,
        &format!("USE GDB FOR SYSTEM_TIME AS OF {before_delete} MATCH (n:Person) RETURN count(n)"),
    );
    assert_eq!(then.rows, vec![vec![Value::Int(5)]]);
}

#[test]
fn set_and_delete_report_affected() {
    let (_d, db) = db();
    let last = seed(&db);
    db.lineage_barrier(last);
    let r = exec(&db, "MATCH (n) WHERE id(n) = 4 SET n.age = 50");
    assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    let check = exec(&db, "MATCH (n) WHERE id(n) = 4 RETURN n.age");
    assert_eq!(check.rows, vec![vec![Value::Int(50)]]);
    // Deleting a node with rels fails transactionally.
    let err = execute(&db, "MATCH (n) WHERE id(n) = 1 DELETE n", &Params::new());
    assert!(err.is_err());
}

#[test]
fn rel_with_where_on_rel_pattern() {
    let (_d, db) = db();
    // A standalone relationship delete via id(r).
    seed(&db);
    let r = exec(&db, "MATCH (a)-[r]->(b) WHERE id(a) = 2 DELETE r");
    assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    let last = db.latest_ts();
    db.lineage_barrier(last);
    let r = exec(
        &db,
        &format!(
            "USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n)-[*4]->(m) WHERE id(n) = 0 RETURN m"
        ),
    );
    assert_eq!(r.rows.len(), 2, "chain is cut after node 2");
}

#[test]
fn order_by_and_limit() {
    let (_d, db) = db();
    let last = seed(&db);
    db.lineage_barrier(last);
    // Ascending by property.
    let r = exec(&db, "MATCH (n:Person) RETURN n.age ORDER BY n.age");
    let ages: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert_eq!(ages, vec![20, 21, 22, 23, 24]);
    // Descending with limit.
    let r = exec(
        &db,
        "MATCH (n:Person) RETURN n.age ORDER BY n.age DESC LIMIT 2",
    );
    let ages: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert_eq!(ages, vec![24, 23]);
    // Order by a property through a returned node column.
    let r = exec(&db, "MATCH (n:Person) RETURN n ORDER BY n.age DESC LIMIT 1");
    assert_eq!(r.rows.len(), 1);
    let query::Value::Node { id, .. } = &r.rows[0][0] else {
        panic!()
    };
    assert_eq!(*id, 4);
    // Order by id().
    let r = exec(
        &db,
        "MATCH (n:Person) RETURN id(n) ORDER BY id(n) DESC LIMIT 3",
    );
    let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![4, 3, 2]);
    // Unknown order key errors.
    assert!(execute(
        &db,
        "MATCH (n:Person) RETURN n.age ORDER BY m.x",
        &Params::new()
    )
    .is_err());
    // LIMIT without ORDER BY.
    let r = exec(&db, "MATCH (n:Person) RETURN n LIMIT 2");
    assert_eq!(r.rows.len(), 2);
}
