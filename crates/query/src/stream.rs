//! Lazy ordered key streams — the streaming half of the executor.
//!
//! A query plan is a tree of [`OrderedKeyStream`]s: each yields entity
//! keys in strictly ascending order, so set algebra over indexes
//! (union via [`MergeOrderedKeyStream`], conjunction via
//! [`IntersectOrderedKeyStream`]) composes without materializing either
//! side, and a pagination cursor is just "resume strictly after key k".
//! [`BudgetedOrderedKeyStream`] threads the per-request [`ExecBudget`]
//! through a plan: every key pulled is a budget check, so deadline and
//! cancellation aborts happen mid-scan, not after a full materialize.
//!
//! [`ScanStream`] is the executor built on top: it drives a key source
//! (the full node index, or a fixed id set from `id(n) = …`), resolves
//! each key at the pinned snapshot, filters, and emits one result row at
//! a time with `LIMIT` pushed down — the shape icydb's
//! `OrderedKeyStream`/`BudgetedOrderedKeyStream` exemplifies (SNIPPETS
//! §2–3) and TVA motivates for bounded-memory version-aware scans.
//!
//! [`ExecBudget`]: crate::exec::ExecBudget

use crate::ast::{Action, Pattern, Predicate, Query, ReturnItem, TimeSpec};
use crate::exec::{
    app_time_pass, charge_row, check_budget, resolve_literal, stage_metrics, value_cmp, Params,
};
use crate::value::Value;
use aion::{Aion, NodeStream};
use lpg::{GraphError, Node, NodeId, Result, StrId, TimeRange, Timestamp};

/// A stream of `u64` keys in strictly ascending order.
///
/// The contract every implementation and combinator relies on:
/// `next_key` never yields a key `<=` any previously yielded key, and
/// after `advance_to(b)` every future key is `>= b`.
pub trait OrderedKeyStream {
    /// The next key, or `None` when exhausted.
    fn next_key(&mut self) -> Result<Option<u64>>;

    /// Skips ahead: keys below `bound` will never be yielded.
    fn advance_to(&mut self, bound: u64);
}

/// A fixed, sorted, deduplicated key set (e.g. from `id(n) = …`).
pub struct VecOrderedKeyStream {
    keys: Vec<u64>,
    idx: usize,
}

impl VecOrderedKeyStream {
    /// Builds the stream; `keys` may arrive unsorted or with duplicates.
    pub fn new(mut keys: Vec<u64>) -> VecOrderedKeyStream {
        keys.sort_unstable();
        keys.dedup();
        VecOrderedKeyStream { keys, idx: 0 }
    }
}

impl OrderedKeyStream for VecOrderedKeyStream {
    fn next_key(&mut self) -> Result<Option<u64>> {
        let k = self.keys.get(self.idx).copied();
        if k.is_some() {
            self.idx += 1;
        }
        Ok(k)
    }

    fn advance_to(&mut self, bound: u64) {
        self.idx += self.keys[self.idx..].partition_point(|k| *k < bound);
    }
}

/// A child stream with a one-key lookahead cache, so combinators can
/// inspect a head repeatedly without consuming it.
struct Peeked {
    inner: Box<dyn OrderedKeyStream>,
    head: Option<u64>,
    started: bool,
}

impl Peeked {
    fn new(inner: Box<dyn OrderedKeyStream>) -> Peeked {
        Peeked {
            inner,
            head: None,
            started: false,
        }
    }

    /// The current head key without consuming it.
    fn head(&mut self) -> Result<Option<u64>> {
        if !self.started {
            self.head = self.inner.next_key()?;
            self.started = true;
        }
        Ok(self.head)
    }

    /// Consumes the current head.
    fn pop(&mut self) -> Result<()> {
        self.head = self.inner.next_key()?;
        Ok(())
    }

    /// Skips ahead; a cached head already `>= bound` is kept.
    fn advance_to(&mut self, bound: u64) {
        if self.started && self.head.is_none_or(|k| k >= bound) {
            return;
        }
        self.inner.advance_to(bound);
        // The cached head is stale: refetch lazily on the next `head()`.
        self.head = None;
        self.started = false;
    }
}

/// Ascending union of child streams, with cross-child deduplication.
pub struct MergeOrderedKeyStream {
    children: Vec<Peeked>,
}

impl MergeOrderedKeyStream {
    /// Merges `children`; each must honor the ascending-order contract.
    pub fn new(children: Vec<Box<dyn OrderedKeyStream>>) -> MergeOrderedKeyStream {
        MergeOrderedKeyStream {
            children: children.into_iter().map(Peeked::new).collect(),
        }
    }
}

impl OrderedKeyStream for MergeOrderedKeyStream {
    fn next_key(&mut self) -> Result<Option<u64>> {
        let mut min: Option<u64> = None;
        for c in &mut self.children {
            if let Some(k) = c.head()? {
                min = Some(min.map_or(k, |m| m.min(k)));
            }
        }
        let Some(min) = min else {
            return Ok(None);
        };
        // Pop the minimum from every child that holds it — that is the
        // cross-child dedup.
        for c in &mut self.children {
            if c.head()? == Some(min) {
                c.pop()?;
            }
        }
        Ok(Some(min))
    }

    fn advance_to(&mut self, bound: u64) {
        for c in &mut self.children {
            c.advance_to(bound);
        }
    }
}

/// Leapfrog intersection: keys present in *every* child stream.
pub struct IntersectOrderedKeyStream {
    children: Vec<Peeked>,
}

impl IntersectOrderedKeyStream {
    /// Intersects `children` (at least one).
    pub fn new(children: Vec<Box<dyn OrderedKeyStream>>) -> IntersectOrderedKeyStream {
        IntersectOrderedKeyStream {
            children: children.into_iter().map(Peeked::new).collect(),
        }
    }
}

impl OrderedKeyStream for IntersectOrderedKeyStream {
    fn next_key(&mut self) -> Result<Option<u64>> {
        if self.children.is_empty() {
            return Ok(None);
        }
        // Leapfrog: raise every child to the maximum head; when all heads
        // agree that key is in the intersection.
        loop {
            check_budget()?;
            let mut target: Option<u64> = None;
            for c in &mut self.children {
                match c.head()? {
                    None => return Ok(None),
                    Some(k) => target = Some(target.map_or(k, |t| t.max(k))),
                }
            }
            let Some(target) = target else {
                return Ok(None);
            };
            let mut all_match = true;
            for c in &mut self.children {
                c.advance_to(target);
                if c.head()? != Some(target) {
                    all_match = false;
                }
            }
            if all_match {
                for c in &mut self.children {
                    c.pop()?;
                }
                return Ok(Some(target));
            }
        }
    }

    fn advance_to(&mut self, bound: u64) {
        for c in &mut self.children {
            c.advance_to(bound);
        }
    }
}

/// Budget enforcement as a stream adapter: every key pulled through it
/// first passes an [`ExecBudget`](crate::exec::ExecBudget) check, so a
/// deadline or drain cancellation aborts a scan between keys.
pub struct BudgetedOrderedKeyStream<S: OrderedKeyStream> {
    inner: S,
}

impl<S: OrderedKeyStream> BudgetedOrderedKeyStream<S> {
    /// Wraps `inner` with per-key budget checks.
    pub fn new(inner: S) -> BudgetedOrderedKeyStream<S> {
        BudgetedOrderedKeyStream { inner }
    }
}

impl<S: OrderedKeyStream> OrderedKeyStream for BudgetedOrderedKeyStream<S> {
    fn next_key(&mut self) -> Result<Option<u64>> {
        check_budget()?;
        self.inner.next_key()
    }

    fn advance_to(&mut self, bound: u64) {
        self.inner.advance_to(bound);
    }
}

// --------------------------------------------------------------------------
// The streaming scan executor.
// --------------------------------------------------------------------------

/// The query shapes the streaming executor serves: one single-node
/// pattern at a point in time, returning plain (non-aggregate) items
/// with no `ORDER BY`. Everything else falls back to the materializing
/// executor (with offset-window pagination).
pub(crate) struct ScanPlan<'q> {
    pub anchor_var: String,
    pub label: Option<StrId>,
    pub items: &'q [ReturnItem],
    pub predicates: &'q [Predicate],
    pub params: &'q Params,
    pub app_time: Option<TimeRange>,
    /// The pinned snapshot timestamp the whole (possibly paged) scan
    /// executes at.
    pub ts: Timestamp,
    /// `id(anchor) = …` constraint, when present.
    pub id_constraint: Option<u64>,
    pub limit: Option<usize>,
}

/// Decides whether `query` is streamable and builds its [`ScanPlan`].
/// `default_ts` pins the implicit "latest" snapshot: the first page
/// resolves it once and the cursor carries it, so later pages are
/// snapshot-consistent under concurrent writers.
pub(crate) fn plan_scan<'q>(
    db: &Aion,
    query: &'q Query,
    params: &'q Params,
    default_ts: Timestamp,
) -> Result<Option<ScanPlan<'q>>> {
    let Query::Match {
        time,
        patterns,
        predicates,
        action,
        order_by,
        limit,
    } = query
    else {
        return Ok(None);
    };
    let Action::Return(items) = action else {
        return Ok(None);
    };
    if order_by.is_some() || items.iter().any(|i| matches!(i, ReturnItem::Count(_))) {
        return Ok(None);
    }
    let [Pattern { start, rel: None }] = patterns.as_slice() else {
        return Ok(None);
    };
    let ts = match time {
        None => default_ts,
        Some(TimeSpec::AsOf(t)) => *t,
        // Window queries return version histories; not streamable yet.
        Some(_) => return Ok(None),
    };
    let anchor_var = start.var.clone().unwrap_or_else(|| "_anchor".into());
    let mut id_constraint = None;
    let mut app_time = None;
    for p in predicates {
        match p {
            Predicate::IdEquals(var, lit) if *var == anchor_var => {
                let v = resolve_literal(lit, params)?;
                let id = v
                    .as_int()
                    .ok_or_else(|| GraphError::Unknown("id() must compare to an integer".into()))?;
                // Matches the materializing executor: the last constraint
                // for a variable wins.
                id_constraint = Some(id as u64);
            }
            Predicate::AppTimeContainedIn(a, b) => {
                app_time = Some(TimeRange::ContainedIn(*a, *b));
            }
            _ => {}
        }
    }
    // The id-lookup branch of the materializing executor ignores the
    // pattern label; replicate that for exact equivalence.
    let label = match id_constraint {
        Some(_) => None,
        None => start.label.as_deref().map(|l| db.intern(l)),
    };
    Ok(Some(ScanPlan {
        anchor_var,
        label,
        items,
        predicates,
        params,
        app_time,
        ts,
        id_constraint,
        limit: *limit,
    }))
}

enum ScanSource {
    /// Every node alive at the pinned ts, ascending ids, resolved lazily.
    All(NodeStream),
    /// An explicit id set; each key is point-resolved. Mirrors the
    /// materializing executor's id-lookup branch, including its quirk of
    /// ignoring the pattern label for id-constrained lookups.
    Fixed(BudgetedOrderedKeyStream<VecOrderedKeyStream>),
}

/// Lazily yields fully-built result rows for a [`ScanPlan`], ascending
/// by anchor node id, charging the row/byte budget per row emitted.
pub(crate) struct ScanStream<'a, 'q> {
    db: &'a Aion,
    plan: ScanPlan<'q>,
    source: ScanSource,
    /// Last anchor id emitted — the pagination cursor anchor.
    pub last_key: Option<u64>,
}

impl<'a, 'q> ScanStream<'a, 'q> {
    /// Opens the stream, resuming strictly after `after` when resuming a
    /// cursor.
    pub(crate) fn open(
        db: &'a Aion,
        plan: ScanPlan<'q>,
        after: Option<u64>,
    ) -> Result<ScanStream<'a, 'q>> {
        let source = match plan.id_constraint {
            Some(id) => {
                let mut keys = BudgetedOrderedKeyStream::new(VecOrderedKeyStream::new(vec![id]));
                if let Some(a) = after {
                    keys.advance_to(a.saturating_add(1));
                }
                ScanSource::Fixed(keys)
            }
            None => ScanSource::All(db.stream_nodes_at(plan.ts, after.map(NodeId::new))?),
        };
        Ok(ScanStream {
            db,
            plan,
            source,
            last_key: None,
        })
    }

    /// The next candidate node in ascending id order, before filtering.
    fn next_candidate(&mut self) -> Result<Option<Node>> {
        match &mut self.source {
            ScanSource::All(s) => s.next_node(),
            ScanSource::Fixed(keys) => loop {
                let Some(id) = keys.next_key()? else {
                    return Ok(None);
                };
                // Point lookup replicating the materializer's
                // `get_node(id, at, at)` semantics.
                let versions = self
                    .db
                    .get_node(NodeId::new(id), self.plan.ts, self.plan.ts)?;
                if let Some(v) = versions.into_iter().next() {
                    return Ok(Some(v.data));
                }
            },
        }
    }

    /// The next fully-built result row, or `None` when the scan is done.
    /// Charges the row/byte budget per emitted row and counts it in the
    /// `query.rows_streamed` metric.
    pub(crate) fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        let interner = self.db.interner();
        loop {
            check_budget()?;
            let Some(node) = self.next_candidate()? else {
                return Ok(None);
            };
            if let Some(l) = self.plan.label {
                if !node.has_label(l) {
                    continue;
                }
            }
            let id = node.id.raw();
            let value = Value::from_node(&node, interner, None);
            if !self.passes_predicates(&value) {
                continue;
            }
            let row = self.build_row(id, &value)?;
            charge_row(&row)?;
            stage_metrics().rows_streamed.inc();
            self.last_key = Some(id);
            return Ok(Some(row));
        }
    }

    /// Predicate filter over the single anchor binding — semantics
    /// identical to the materializing executor's filter stage: a
    /// `PropCmp` on an unbound variable fails the row.
    fn passes_predicates(&self, value: &Value) -> bool {
        self.plan.predicates.iter().all(|p| match p {
            Predicate::PropCmp(var, key, op, lit) => {
                if *var != self.plan.anchor_var {
                    // The materializer drops rows whose PropCmp variable
                    // is unbound; a single-pattern scan binds only the
                    // anchor.
                    return false;
                }
                let Ok(expected) = resolve_literal(lit, self.plan.params) else {
                    return false;
                };
                match value {
                    Value::Node { props, .. } | Value::Rel { props, .. } => props
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|(_, actual)| value_cmp(actual, *op, &expected))
                        .unwrap_or(false),
                    _ => false,
                }
            }
            Predicate::AppTimeContainedIn(..) => {
                let Some(range) = self.plan.app_time else {
                    return true;
                };
                app_time_pass(self.db, value, range)
            }
            Predicate::IdEquals(..) => true,
        })
    }

    fn build_row(&self, id: u64, value: &Value) -> Result<Vec<Value>> {
        let anchor = &self.plan.anchor_var;
        let mut row = Vec::with_capacity(self.plan.items.len());
        for item in self.plan.items {
            row.push(match item {
                ReturnItem::Var(v) if v == anchor => value.clone(),
                ReturnItem::Var(_) => Value::Null,
                ReturnItem::Prop(v, k) if v == anchor => match value {
                    Value::Node { props, .. } | Value::Rel { props, .. } => props
                        .iter()
                        .find(|(key, _)| key == k)
                        .map(|(_, v)| v.clone())
                        .unwrap_or(Value::Null),
                    _ => Value::Null,
                },
                ReturnItem::Prop(..) => Value::Null,
                ReturnItem::Id(v) if v == anchor => Value::Int(id as i64),
                ReturnItem::Id(_) => Value::Null,
                ReturnItem::Count(_) => {
                    return Err(GraphError::ExecError(
                        "COUNT item reached the streaming row builder".into(),
                    ))
                }
            });
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut dyn OrderedKeyStream) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(k) = s.next_key().unwrap() {
            out.push(k);
        }
        out
    }

    #[test]
    fn vec_stream_sorts_dedups_and_advances() {
        let mut s = VecOrderedKeyStream::new(vec![9, 1, 5, 5, 3]);
        assert_eq!(s.next_key().unwrap(), Some(1));
        s.advance_to(5);
        assert_eq!(drain(&mut s), vec![5, 9]);
        assert_eq!(s.next_key().unwrap(), None);
    }

    #[test]
    fn merge_unions_and_dedups_across_children() {
        let a = Box::new(VecOrderedKeyStream::new(vec![1, 3, 5, 7]));
        let b = Box::new(VecOrderedKeyStream::new(vec![2, 3, 6, 7, 8]));
        let mut m = MergeOrderedKeyStream::new(vec![a, b]);
        assert_eq!(drain(&mut m), vec![1, 2, 3, 5, 6, 7, 8]);
    }

    #[test]
    fn merge_advance_skips_all_children() {
        let a = Box::new(VecOrderedKeyStream::new(vec![1, 4, 9]));
        let b = Box::new(VecOrderedKeyStream::new(vec![2, 4, 10]));
        let mut m = MergeOrderedKeyStream::new(vec![a, b]);
        assert_eq!(m.next_key().unwrap(), Some(1));
        m.advance_to(4);
        assert_eq!(drain(&mut m), vec![4, 9, 10]);
    }

    #[test]
    fn intersect_leapfrogs_to_common_keys() {
        let a = Box::new(VecOrderedKeyStream::new(vec![1, 2, 3, 5, 8, 13]));
        let b = Box::new(VecOrderedKeyStream::new(vec![2, 3, 5, 7, 13]));
        let c = Box::new(VecOrderedKeyStream::new(vec![0, 2, 5, 13, 21]));
        let mut i = IntersectOrderedKeyStream::new(vec![a, b, c]);
        assert_eq!(drain(&mut i), vec![2, 5, 13]);
    }

    #[test]
    fn intersect_with_disjoint_child_is_empty() {
        let a = Box::new(VecOrderedKeyStream::new(vec![1, 3, 5]));
        let b = Box::new(VecOrderedKeyStream::new(vec![2, 4, 6]));
        let mut i = IntersectOrderedKeyStream::new(vec![a, b]);
        assert_eq!(drain(&mut i), Vec::<u64>::new());
    }

    #[test]
    fn budgeted_stream_passes_keys_through() {
        let mut s = BudgetedOrderedKeyStream::new(VecOrderedKeyStream::new(vec![4, 2]));
        assert_eq!(drain(&mut s), vec![2, 4]);
    }
}
