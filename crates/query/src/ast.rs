//! Abstract syntax of the temporal Cypher subset.

/// A literal value in a query.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean (`true` / `false` identifiers).
    Bool(bool),
    /// `$name` parameter reference.
    Param(String),
}

/// `FOR SYSTEM_TIME …` specifier.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TimeSpec {
    /// `AS OF t`
    AsOf(u64),
    /// `FROM a TO b`
    FromTo(u64, u64),
    /// `BETWEEN a AND b`
    Between(u64, u64),
    /// `CONTAINED IN (a, b)`
    ContainedIn(u64, u64),
}

impl TimeSpec {
    /// Converts to the storage-level range.
    pub fn to_range(self) -> lpg::TimeRange {
        match self {
            TimeSpec::AsOf(t) => lpg::TimeRange::AsOf(t),
            TimeSpec::FromTo(a, b) => lpg::TimeRange::FromTo(a, b),
            TimeSpec::Between(a, b) => lpg::TimeRange::Between(a, b),
            TimeSpec::ContainedIn(a, b) => lpg::TimeRange::ContainedIn(a, b),
        }
    }
}

/// A node pattern `(var:Label {key: value, …})`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NodePattern {
    /// Binding variable.
    pub var: Option<String>,
    /// Label constraint.
    pub label: Option<String>,
    /// Inline property constraints / values.
    pub props: Vec<(String, Literal)>,
}

/// Relationship direction in a pattern.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RelDirection {
    /// `-[..]->`
    Right,
    /// `<-[..]-`
    Left,
    /// `-[..]-`
    Undirected,
}

/// A relationship pattern `-[var:TYPE*hops {..}]->`.
#[derive(Clone, PartialEq, Debug)]
pub struct RelPattern {
    /// Binding variable.
    pub var: Option<String>,
    /// Type constraint.
    pub rel_type: Option<String>,
    /// `*n` hop count (1 when absent).
    pub hops: u32,
    /// Inline properties (used by CREATE).
    pub props: Vec<(String, Literal)>,
    /// Pattern direction.
    pub direction: RelDirection,
}

/// One `MATCH`/`CREATE` path: a node, optionally connected to another.
#[derive(Clone, PartialEq, Debug)]
pub struct Pattern {
    /// The anchor node.
    pub start: NodePattern,
    /// Optional `rel + end node`.
    pub rel: Option<(RelPattern, NodePattern)>,
}

/// Comparison operator in predicates.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A `WHERE` predicate.
#[derive(Clone, PartialEq, Debug)]
pub enum Predicate {
    /// `id(var) = literal`
    IdEquals(String, Literal),
    /// `var.key <op> literal`
    PropCmp(String, String, CmpOp, Literal),
    /// `APPLICATION_TIME CONTAINED IN (a, b)`
    AppTimeContainedIn(u64, u64),
}

/// A `RETURN` item.
#[derive(Clone, PartialEq, Debug)]
pub enum ReturnItem {
    /// `var`
    Var(String),
    /// `var.key`
    Prop(String, String),
    /// `count(var)`
    Count(String),
    /// `id(var)`
    Id(String),
}

/// `ORDER BY` key: a return-item-like expression plus direction.
#[derive(Clone, PartialEq, Debug)]
pub struct OrderBy {
    /// What to sort on (`var.key` or `id(var)`).
    pub item: ReturnItem,
    /// Descending order (`DESC`).
    pub descending: bool,
}

/// The action tail of a `MATCH`.
#[derive(Clone, PartialEq, Debug)]
pub enum Action {
    /// `RETURN items [ORDER BY …] [LIMIT n]`
    Return(Vec<ReturnItem>),
    /// `SET var.key = literal`
    Set(String, String, Literal),
    /// `DELETE var`
    Delete(Vec<String>),
    /// `CREATE patterns` (with bindings from the MATCH part).
    Create(Vec<Pattern>),
}

/// A parsed query.
#[derive(Clone, PartialEq, Debug)]
pub enum Query {
    /// `MATCH … WHERE … (RETURN|SET|DELETE|CREATE)`
    Match {
        /// System-time clause, defaulting to "latest" when absent.
        time: Option<TimeSpec>,
        /// Match patterns.
        patterns: Vec<Pattern>,
        /// WHERE predicates (conjunctive).
        predicates: Vec<Predicate>,
        /// The action.
        action: Action,
        /// Optional `ORDER BY` on RETURN queries.
        order_by: Option<OrderBy>,
        /// Optional `LIMIT` on RETURN queries.
        limit: Option<usize>,
    },
    /// Standalone `CREATE patterns`.
    Create {
        /// Created patterns.
        patterns: Vec<Pattern>,
    },
    /// `CALL namespace.proc(args…)` — temporal procedures (Sec. 5.1).
    Call {
        /// Dotted procedure name, e.g. `aion.pagerank`.
        name: String,
        /// Positional arguments.
        args: Vec<Literal>,
    },
}
