//! Opaque, resumable pagination cursors.
//!
//! A cursor token pins everything a resume needs to be exact:
//!
//! - the **snapshot timestamp** the scan executes at, so every page of
//!   one logical scan sees the same graph even while writers commit;
//! - a **query fingerprint** (query text + parameters), so a token can
//!   only resume the query it was minted for;
//! - the **anchor** — either the last node key emitted (streaming scans
//!   resume strictly after it) or a row offset (materialized fallback);
//! - the **rows emitted so far**, so `LIMIT` composes across pages;
//! - an FNV-1a **checksum** over all of the above.
//!
//! Tokens are integrity-checked, not authenticated: a corrupted,
//! truncated, or bit-flipped token is rejected with
//! [`GraphError::CursorInvalid`] — never mis-resumed. On top of the
//! codec, the executor revalidates the anchor against the pinned
//! snapshot (a compacted or vanished anchor also yields `CursorInvalid`
//! rather than silently skipping or duplicating rows).

use crate::exec::Params;
use crate::value::Value;
use lpg::{GraphError, Result};

const MAGIC: u16 = 0xA10C;
const VERSION: u8 = 1;
const KIND_KEY: u8 = 1;
const KIND_OFFSET: u8 = 2;
/// magic(2) + version(1) + kind(1) + ts(8) + anchor(8) + rows(8) +
/// fingerprint(8) + checksum(8).
const TOKEN_LEN: usize = 44;

/// Where a resumed scan picks up.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Anchor {
    /// Streaming scan: resume strictly after this node key.
    Key(u64),
    /// Materialized fallback: resume at this row offset.
    Offset(u64),
}

/// A decoded cursor token.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CursorToken {
    /// Snapshot timestamp the paged scan is pinned to.
    pub snapshot_ts: u64,
    /// Fingerprint of the query text + parameters.
    pub fingerprint: u64,
    /// Rows emitted by all previous pages (LIMIT accounting).
    pub rows_emitted: u64,
    /// Resume position.
    pub anchor: Anchor,
}

impl CursorToken {
    /// Serializes the token with its trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TOKEN_LEN);
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION);
        let (kind, anchor) = match self.anchor {
            Anchor::Key(k) => (KIND_KEY, k),
            Anchor::Offset(o) => (KIND_OFFSET, o),
        };
        out.push(kind);
        out.extend_from_slice(&self.snapshot_ts.to_be_bytes());
        out.extend_from_slice(&anchor.to_be_bytes());
        out.extend_from_slice(&self.rows_emitted.to_be_bytes());
        out.extend_from_slice(&self.fingerprint.to_be_bytes());
        let sum = fnv64(&out);
        out.extend_from_slice(&sum.to_be_bytes());
        out
    }

    /// Parses and integrity-checks a token. Every failure is a typed
    /// [`GraphError::CursorInvalid`]; garbage can never mis-resume.
    pub fn decode(bytes: &[u8]) -> Result<CursorToken> {
        let invalid = |why: &str| GraphError::CursorInvalid(why.into());
        if bytes.len() != TOKEN_LEN {
            return Err(invalid("wrong length"));
        }
        let (body, sum_bytes) = bytes.split_at(TOKEN_LEN - 8);
        let stored = u64::from_be_bytes(sum_bytes.try_into().map_err(|_| invalid("checksum"))?);
        if fnv64(body) != stored {
            return Err(invalid("checksum mismatch"));
        }
        let u16_at = |i: usize| u16::from_be_bytes([bytes[i], bytes[i + 1]]);
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i..i + 8]);
            u64::from_be_bytes(b)
        };
        if u16_at(0) != MAGIC {
            return Err(invalid("bad magic"));
        }
        if bytes[2] != VERSION {
            return Err(invalid("unknown version"));
        }
        let anchor = match bytes[3] {
            KIND_KEY => Anchor::Key(u64_at(12)),
            KIND_OFFSET => Anchor::Offset(u64_at(12)),
            _ => return Err(invalid("unknown anchor kind")),
        };
        Ok(CursorToken {
            snapshot_ts: u64_at(4),
            anchor,
            rows_emitted: u64_at(20),
            fingerprint: u64_at(28),
        })
    }
}

/// Decodes only the pinned snapshot timestamp (integrity-checked). The
/// server's staleness gate uses this before executing: a replica whose
/// replay watermark is behind the cursor's snapshot must refuse with
/// `StaleReplica` (retryable elsewhere) instead of serving rows the
/// cursor's snapshot has not reached — the same `min_watermark`
/// bounded-staleness contract as first-page reads.
pub fn peek_snapshot_ts(bytes: &[u8]) -> Result<u64> {
    CursorToken::decode(bytes).map(|t| t.snapshot_ts)
}

/// The page window `[start, end)` into a materialized result of `total`
/// rows. An offset beyond the result means the anchor no longer exists
/// (the query re-executed smaller than when the cursor was minted) —
/// a genuine revalidation failure.
pub fn compute_page_window(total: usize, offset: u64, page_size: usize) -> Result<(usize, usize)> {
    let start = usize::try_from(offset)
        .ok()
        .filter(|s| *s <= total)
        .ok_or_else(|| {
            GraphError::CursorInvalid("offset beyond the result: anchor no longer resolves".into())
        })?;
    Ok((start, total.min(start.saturating_add(page_size.max(1)))))
}

/// Fingerprints a query + parameter map. Parameter order is
/// canonicalized so logically identical requests fingerprint equally.
pub fn fingerprint(text: &str, params: &Params) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_feed(&mut h, text.as_bytes());
    let mut names: Vec<&String> = params.keys().collect();
    names.sort();
    for name in names {
        fnv_feed(&mut h, &[0xFE]);
        fnv_feed(&mut h, name.as_bytes());
        hash_value(&mut h, &params[name]);
    }
    h
}

fn hash_value(h: &mut u64, v: &Value) {
    match v {
        Value::Null => fnv_feed(h, &[0]),
        Value::Bool(b) => fnv_feed(h, &[1, u8::from(*b)]),
        Value::Int(i) => {
            fnv_feed(h, &[2]);
            fnv_feed(h, &i.to_be_bytes());
        }
        Value::Float(f) => {
            fnv_feed(h, &[3]);
            fnv_feed(h, &f.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            fnv_feed(h, &[4]);
            fnv_feed(h, s.as_bytes());
        }
        Value::Node { id, .. } => {
            fnv_feed(h, &[5]);
            fnv_feed(h, &id.to_be_bytes());
        }
        Value::Rel { id, .. } => {
            fnv_feed(h, &[6]);
            fnv_feed(h, &id.to_be_bytes());
        }
        Value::List(vs) => {
            fnv_feed(h, &[7]);
            for v in vs {
                hash_value(h, v);
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv_feed(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_feed(&mut h, bytes);
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token() -> CursorToken {
        CursorToken {
            snapshot_ts: 42,
            fingerprint: 0xDEAD_BEEF,
            rows_emitted: 17,
            anchor: Anchor::Key(99),
        }
    }

    #[test]
    fn roundtrip() {
        let t = token();
        assert_eq!(CursorToken::decode(&t.encode()).unwrap(), t);
        let o = CursorToken {
            anchor: Anchor::Offset(3),
            ..t
        };
        assert_eq!(CursorToken::decode(&o.encode()).unwrap(), o);
        assert_eq!(peek_snapshot_ts(&t.encode()).unwrap(), 42);
    }

    #[test]
    fn truncation_and_bitflips_reject() {
        let enc = token().encode();
        for len in 0..enc.len() {
            assert!(
                CursorToken::decode(&enc[..len]).is_err(),
                "truncated to {len} must reject"
            );
        }
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    CursorToken::decode(&bad).is_err(),
                    "bit flip at {byte}:{bit} must reject"
                );
            }
        }
    }

    #[test]
    fn page_window_clamps_and_rejects() {
        assert_eq!(compute_page_window(10, 0, 3).unwrap(), (0, 3));
        assert_eq!(compute_page_window(10, 9, 3).unwrap(), (9, 10));
        assert_eq!(compute_page_window(10, 10, 3).unwrap(), (10, 10));
        assert!(compute_page_window(10, 11, 3).is_err());
        assert!(compute_page_window(3, u64::MAX, 3).is_err());
    }

    #[test]
    fn fingerprint_canonicalizes_params() {
        let mut a = Params::new();
        a.insert("x".into(), Value::Int(1));
        a.insert("y".into(), Value::Str("s".into()));
        let mut b = Params::new();
        b.insert("y".into(), Value::Str("s".into()));
        b.insert("x".into(), Value::Int(1));
        assert_eq!(
            fingerprint("MATCH (n) RETURN n", &a),
            fingerprint("MATCH (n) RETURN n", &b)
        );
        assert_ne!(
            fingerprint("MATCH (n) RETURN n", &a),
            fingerprint("MATCH (m) RETURN m", &a)
        );
        let mut c = a.clone();
        c.insert("x".into(), Value::Int(2));
        assert_ne!(
            fingerprint("MATCH (n) RETURN n", &a),
            fingerprint("MATCH (n) RETURN n", &c)
        );
    }
}
