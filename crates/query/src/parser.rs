//! Recursive-descent parser for the temporal Cypher subset.

use crate::ast::*;
use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// Parse error.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Description with context.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { msg: e.to_string() }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses one temporal Cypher statement.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err(&format!("trailing tokens starting at {}", p.peek_str())));
    }
    Ok(q)
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: format!("{msg} (token {})", self.pos),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_str(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "<eof>".into())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the keyword `kw` (case-insensitive); errors otherwise.
    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(&format!(
                "expected keyword {kw}, found {:?}",
                other.map(|t| t.to_string())
            ))),
        }
    }

    /// Consumes `kw` if it is next; returns whether it was.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_token(&mut self, t: Token) -> Result<(), ParseError> {
        match self.next() {
            Some(found) if found == t => Ok(()),
            other => Err(self.err(&format!(
                "expected {t:?}, found {:?}",
                other.map(|x| x.to_string())
            ))),
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(&format!(
                "expected identifier, found {:?}",
                other.map(|t| t.to_string())
            ))),
        }
    }

    fn int(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Token::Int(v)) if v >= 0 => Ok(v as u64),
            other => Err(self.err(&format!(
                "expected non-negative integer, found {:?}",
                other.map(|t| t.to_string())
            ))),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Literal::Int(v)),
            Some(Token::Float(v)) => Ok(Literal::Float(v)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Param(p)) => Ok(Literal::Param(p)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Literal::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Literal::Bool(false)),
            Some(Token::Dash) => match self.next() {
                Some(Token::Int(v)) => Ok(Literal::Int(-v)),
                Some(Token::Float(v)) => Ok(Literal::Float(-v)),
                other => Err(self.err(&format!(
                    "expected number after '-', found {:?}",
                    other.map(|t| t.to_string())
                ))),
            },
            other => Err(self.err(&format!(
                "expected literal, found {:?}",
                other.map(|t| t.to_string())
            ))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        let time = if self.eat_kw("USE") {
            self.expect_kw("GDB")?;
            self.expect_kw("FOR")?;
            self.expect_kw("SYSTEM_TIME")?;
            Some(self.timespec()?)
        } else {
            None
        };
        if self.eat_kw("MATCH") {
            return self.match_query(time);
        }
        if self.eat_kw("CREATE") {
            let patterns = self.patterns()?;
            return Ok(Query::Create { patterns });
        }
        if self.eat_kw("CALL") {
            return self.call_query();
        }
        Err(self.err(&format!(
            "expected MATCH, CREATE or CALL, found {}",
            self.peek_str()
        )))
    }

    fn call_query(&mut self) -> Result<Query, ParseError> {
        let mut name = self.ident()?;
        while self.eat(&Token::Dot) {
            name.push('.');
            name.push_str(&self.ident()?);
        }
        self.expect_token(Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.literal()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_token(Token::RParen)?;
        Ok(Query::Call { name, args })
    }

    fn timespec(&mut self) -> Result<TimeSpec, ParseError> {
        if self.eat_kw("AS") {
            self.expect_kw("OF")?;
            return Ok(TimeSpec::AsOf(self.int()?));
        }
        if self.eat_kw("FROM") {
            let a = self.int()?;
            self.expect_kw("TO")?;
            return Ok(TimeSpec::FromTo(a, self.int()?));
        }
        if self.eat_kw("BETWEEN") {
            let a = self.int()?;
            self.expect_kw("AND")?;
            return Ok(TimeSpec::Between(a, self.int()?));
        }
        if self.eat_kw("CONTAINED") {
            self.expect_kw("IN")?;
            self.expect_token(Token::LParen)?;
            let a = self.int()?;
            self.expect_token(Token::Comma)?;
            let b = self.int()?;
            self.expect_token(Token::RParen)?;
            return Ok(TimeSpec::ContainedIn(a, b));
        }
        Err(self.err("expected AS OF / FROM / BETWEEN / CONTAINED IN"))
    }

    fn match_query(&mut self, time: Option<TimeSpec>) -> Result<Query, ParseError> {
        let patterns = self.patterns()?;
        let mut predicates = Vec::new();
        if self.eat_kw("WHERE") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }
        let mut order_by = None;
        let mut limit = None;
        let action = if self.eat_kw("RETURN") {
            let mut items = vec![self.return_item()?];
            while self.eat(&Token::Comma) {
                items.push(self.return_item()?);
            }
            if self.eat_kw("ORDER") {
                self.expect_kw("BY")?;
                let item = self.return_item()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    let _ = self.eat_kw("ASC");
                    false
                };
                order_by = Some(OrderBy { item, descending });
            }
            if self.eat_kw("LIMIT") {
                limit = Some(self.int()? as usize);
            }
            Action::Return(items)
        } else if self.eat_kw("SET") {
            let var = self.ident()?;
            self.expect_token(Token::Dot)?;
            let key = self.ident()?;
            self.expect_token(Token::Eq)?;
            Action::Set(var, key, self.literal()?)
        } else if self.eat_kw("DELETE") {
            let mut vars = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                vars.push(self.ident()?);
            }
            Action::Delete(vars)
        } else if self.eat_kw("CREATE") {
            Action::Create(self.patterns()?)
        } else {
            return Err(self.err("expected RETURN, SET, DELETE or CREATE after MATCH"));
        };
        Ok(Query::Match {
            time,
            patterns,
            predicates,
            action,
            order_by,
            limit,
        })
    }

    fn patterns(&mut self) -> Result<Vec<Pattern>, ParseError> {
        let mut out = vec![self.pattern()?];
        while self.eat(&Token::Comma) {
            out.push(self.pattern()?);
        }
        Ok(out)
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        let start = self.node_pattern()?;
        let rel = if matches!(self.peek(), Some(Token::Dash | Token::ArrowLeft)) {
            let rel = self.rel_pattern()?;
            let end = self.node_pattern()?;
            Some((rel, end))
        } else {
            None
        };
        Ok(Pattern { start, rel })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, ParseError> {
        self.expect_token(Token::LParen)?;
        let mut node = NodePattern::default();
        if let Some(Token::Ident(_)) = self.peek() {
            node.var = Some(self.ident()?);
        }
        if self.eat(&Token::Colon) {
            node.label = Some(self.ident()?);
        }
        if self.peek() == Some(&Token::LBrace) {
            node.props = self.prop_map()?;
        }
        self.expect_token(Token::RParen)?;
        Ok(node)
    }

    fn rel_pattern(&mut self) -> Result<RelPattern, ParseError> {
        // Leading `<-[` or `-[`.
        let from_left = self.eat(&Token::ArrowLeft);
        if !from_left {
            self.expect_token(Token::Dash)?;
        }
        self.expect_token(Token::LBracket)?;
        let mut rel = RelPattern {
            var: None,
            rel_type: None,
            hops: 1,
            props: Vec::new(),
            direction: RelDirection::Undirected,
        };
        if let Some(Token::Ident(_)) = self.peek() {
            rel.var = Some(self.ident()?);
        }
        if self.eat(&Token::Colon) {
            rel.rel_type = Some(self.ident()?);
        }
        if self.eat(&Token::Star) {
            rel.hops = self.int()? as u32;
        }
        if self.peek() == Some(&Token::LBrace) {
            rel.props = self.prop_map()?;
        }
        self.expect_token(Token::RBracket)?;
        // Trailing `]->` or `]-`.
        let to_right = if self.eat(&Token::ArrowRight) {
            true
        } else {
            self.expect_token(Token::Dash)?;
            false
        };
        rel.direction = match (from_left, to_right) {
            (true, false) => RelDirection::Left,
            (false, true) => RelDirection::Right,
            (false, false) => RelDirection::Undirected,
            (true, true) => return Err(self.err("relationship cannot point both ways")),
        };
        Ok(rel)
    }

    fn prop_map(&mut self) -> Result<Vec<(String, Literal)>, ParseError> {
        self.expect_token(Token::LBrace)?;
        let mut props = Vec::new();
        if self.peek() != Some(&Token::RBrace) {
            loop {
                let key = self.ident()?;
                self.expect_token(Token::Colon)?;
                props.push((key, self.literal()?));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_token(Token::RBrace)?;
        Ok(props)
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        // APPLICATION_TIME CONTAINED IN (a, b)
        if self.eat_kw("APPLICATION_TIME") {
            self.expect_kw("CONTAINED")?;
            self.expect_kw("IN")?;
            self.expect_token(Token::LParen)?;
            let a = self.int()?;
            self.expect_token(Token::Comma)?;
            let b = self.int()?;
            self.expect_token(Token::RParen)?;
            return Ok(Predicate::AppTimeContainedIn(a, b));
        }
        let name = self.ident()?;
        if name.eq_ignore_ascii_case("id") && self.eat(&Token::LParen) {
            let var = self.ident()?;
            self.expect_token(Token::RParen)?;
            self.expect_token(Token::Eq)?;
            return Ok(Predicate::IdEquals(var, self.literal()?));
        }
        // var.key <op> literal
        self.expect_token(Token::Dot)?;
        let key = self.ident()?;
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Neq) => CmpOp::Neq,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(self.err(&format!(
                    "expected comparison operator, found {:?}",
                    other.map(|t| t.to_string())
                )))
            }
        };
        Ok(Predicate::PropCmp(name, key, op, self.literal()?))
    }

    fn return_item(&mut self) -> Result<ReturnItem, ParseError> {
        let name = self.ident()?;
        if name.eq_ignore_ascii_case("count") && self.eat(&Token::LParen) {
            let var = self.ident()?;
            self.expect_token(Token::RParen)?;
            return Ok(ReturnItem::Count(var));
        }
        if name.eq_ignore_ascii_case("id") && self.eat(&Token::LParen) {
            let var = self.ident()?;
            self.expect_token(Token::RParen)?;
            return Ok(ReturnItem::Id(var));
        }
        if self.eat(&Token::Dot) {
            let key = self.ident()?;
            return Ok(ReturnItem::Prop(name, key));
        }
        Ok(ReturnItem::Var(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_history_lookup() {
        let q = parse(
            "USE GDB FOR SYSTEM_TIME BETWEEN 10 AND 20 MATCH (n: Node) WHERE id(n) = $id RETURN n",
        )
        .unwrap();
        match q {
            Query::Match {
                time,
                patterns,
                predicates,
                action,
                ..
            } => {
                assert_eq!(time, Some(TimeSpec::Between(10, 20)));
                assert_eq!(patterns[0].start.label.as_deref(), Some("Node"));
                assert_eq!(
                    predicates,
                    vec![Predicate::IdEquals("n".into(), Literal::Param("id".into()))]
                );
                assert_eq!(action, Action::Return(vec![ReturnItem::Var("n".into())]));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn fig1b_neighbourhood() {
        let q =
            parse("USE GDB FOR SYSTEM_TIME AS OF 5 MATCH (n)-[*3]->(m) WHERE id(n) = 7 RETURN m")
                .unwrap();
        let Query::Match { time, patterns, .. } = q else {
            panic!()
        };
        assert_eq!(time, Some(TimeSpec::AsOf(5)));
        let (rel, end) = patterns[0].rel.as_ref().unwrap();
        assert_eq!(rel.hops, 3);
        assert_eq!(rel.direction, RelDirection::Right);
        assert_eq!(end.var.as_deref(), Some("m"));
    }

    #[test]
    fn fig1c_bitemporal() {
        let q = parse(
            "USE GDB FOR SYSTEM_TIME AS OF 5 MATCH (n: Node) WHERE id(n) = 1 AND APPLICATION_TIME CONTAINED IN (2, 3) RETURN n",
        )
        .unwrap();
        let Query::Match { predicates, .. } = q else {
            panic!()
        };
        assert_eq!(predicates.len(), 2);
        assert_eq!(predicates[1], Predicate::AppTimeContainedIn(2, 3));
    }

    #[test]
    fn create_and_set_and_delete() {
        let q = parse("CREATE (n:Person {_id: 5, name: 'ada', age: 36})").unwrap();
        let Query::Create { patterns } = q else {
            panic!()
        };
        assert_eq!(patterns[0].start.props.len(), 3);

        let q =
            parse("MATCH (a), (b) WHERE id(a) = 1 AND id(b) = 2 CREATE (a)-[:KNOWS {_id: 9}]->(b)")
                .unwrap();
        let Query::Match {
            action: Action::Create(pats),
            patterns,
            ..
        } = q
        else {
            panic!()
        };
        assert_eq!(patterns.len(), 2);
        assert_eq!(
            pats[0].rel.as_ref().unwrap().0.rel_type.as_deref(),
            Some("KNOWS")
        );

        let q = parse("MATCH (n) WHERE id(n) = 5 SET n.age = 37").unwrap();
        assert!(matches!(
            q,
            Query::Match {
                action: Action::Set(_, _, Literal::Int(37)),
                ..
            }
        ));

        let q = parse("MATCH (n) WHERE id(n) = 5 DELETE n").unwrap();
        assert!(matches!(
            q,
            Query::Match {
                action: Action::Delete(_),
                ..
            }
        ));
    }

    #[test]
    fn undirected_and_left_patterns() {
        let q = parse("MATCH (n)<-[r:REL]-(m) WHERE id(n) = 1 RETURN m").unwrap();
        let Query::Match { patterns, .. } = q else {
            panic!()
        };
        assert_eq!(
            patterns[0].rel.as_ref().unwrap().0.direction,
            RelDirection::Left
        );
        let q = parse("MATCH (n)-[r]-(m) WHERE id(n) = 1 RETURN count(m)").unwrap();
        let Query::Match {
            patterns, action, ..
        } = q
        else {
            panic!()
        };
        assert_eq!(
            patterns[0].rel.as_ref().unwrap().0.direction,
            RelDirection::Undirected
        );
        assert_eq!(action, Action::Return(vec![ReturnItem::Count("m".into())]));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("MATCH (n RETURN n").is_err());
        assert!(parse("USE GDB FOR SYSTEM_TIME NEVER MATCH (n) RETURN n").is_err());
        assert!(
            parse("MATCH (n) WHERE id(n) = 1").is_err(),
            "missing action"
        );
        assert!(
            parse("MATCH (n) RETURN n extra").is_err(),
            "trailing tokens"
        );
        assert!(parse("FETCH (n)").is_err());
    }

    #[test]
    fn prop_comparison_predicates() {
        let q = parse("MATCH (n) WHERE n.age >= 30 AND n.name = 'bob' RETURN n.age").unwrap();
        let Query::Match {
            predicates, action, ..
        } = q
        else {
            panic!()
        };
        assert_eq!(predicates.len(), 2);
        assert!(matches!(
            predicates[0],
            Predicate::PropCmp(_, _, CmpOp::Ge, Literal::Int(30))
        ));
        assert_eq!(
            action,
            Action::Return(vec![ReturnItem::Prop("n".into(), "age".into())])
        );
    }
}
