//! Tokenizer for temporal Cypher. Keywords are case-insensitive, as in
//! Cypher; identifiers and string literals preserve case.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Bare identifier or keyword (uppercased match at the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single- or double-quoted string literal (unescaped).
    Str(String),
    /// `$name` parameter.
    Param(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `-`
    Dash,
    /// `->`
    ArrowRight,
    /// `<-`
    ArrowLeft,
    /// `*`
    Star,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Param(s) => write!(f, "${s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Lexer error with byte position.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'-') => {
                    out.push(Token::ArrowLeft);
                    i += 2;
                }
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Neq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::ArrowRight);
                    i += 2;
                } else {
                    out.push(Token::Dash);
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        pos: i,
                        msg: "empty parameter name".into(),
                    });
                }
                out.push(Token::Param(input[start..j].to_string()));
                i = j;
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(LexError {
                                pos: i,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some(&b) if b as char == quote => {
                            j += 1;
                            break;
                        }
                        Some(&b'\\') => {
                            match bytes.get(j + 1) {
                                Some(&e) => s.push(match e {
                                    b'n' => '\n',
                                    b't' => '\t',
                                    other => other as char,
                                }),
                                None => {
                                    return Err(LexError {
                                        pos: j,
                                        msg: "dangling escape".into(),
                                    })
                                }
                            }
                            j += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || (bytes[j] == b'.'
                            && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                            && !is_float))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| LexError {
                        pos: start,
                        msg: format!("bad float literal {text}"),
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| LexError {
                        pos: start,
                        msg: format!("bad int literal {text}"),
                    })?));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    pos: i,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_fig1_queries() {
        let toks = lex(
            "USE GDB FOR SYSTEM_TIME BETWEEN 1 AND 2 MATCH (n: Node) WHERE id(n) = $id RETURN n",
        )
        .unwrap();
        assert!(toks.contains(&Token::Ident("SYSTEM_TIME".into())));
        assert!(toks.contains(&Token::Param("id".into())));
        assert!(toks.contains(&Token::Int(2)));
    }

    #[test]
    fn arrows_and_comparisons() {
        let toks = lex("-[r:KNOWS*3]-> <-[x]- <> <= >= < >").unwrap();
        assert_eq!(toks[0], Token::Dash);
        assert!(toks.contains(&Token::ArrowRight));
        assert!(toks.contains(&Token::ArrowLeft));
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn literals() {
        let toks = lex("3.5 42 'hi' \"there\\n\"").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Float(3.5),
                Token::Int(42),
                Token::Str("hi".into()),
                Token::Str("there\n".into()),
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("#").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("$").is_err());
    }
}
