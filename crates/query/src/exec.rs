//! The executor: binds patterns, applies predicates, and routes reads
//! through Aion's temporal API (so the planner's store choice applies).

use crate::ast::*;
use crate::value::Value;
use aion::bitemporal;
use aion::Aion;
use lpg::{
    Direction, GraphError, NodeId, PropertyValue, RelId, Result, StrId, TimeRange, Timestamp,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Query parameters (`$name` bindings).
pub type Params = HashMap<String, Value>;

/// Result-size spending shared by every clone of one [`ExecBudget`] —
/// a `RunBatch` installs per-statement clones of one budget, so the
/// row/byte caps apply to the batch as a whole.
#[derive(Default)]
struct BudgetSpent {
    rows: AtomicU64,
    bytes: AtomicU64,
}

/// Cooperative execution budget for one query: an optional wall-clock
/// deadline plus an optional external cancellation flag (set by the
/// server when it drains), plus optional row/byte caps on the result.
/// The executor checks the deadline at loop boundaries — bind scans,
/// filters, row building, procedure slices — and aborts with
/// [`GraphError::DeadlineExceeded`]; every result row built charges the
/// row/byte caps and aborts with the distinct
/// [`GraphError::BudgetExceeded`] (the query was not slow — it was too
/// big, so the client should page or narrow it rather than retry). It
/// never checks mid-commit, so a write either fully commits or never
/// starts.
#[derive(Clone, Default)]
pub struct ExecBudget {
    /// Absolute abort time.
    pub deadline: Option<Instant>,
    /// External cancellation (e.g. server drain); checked alongside the
    /// deadline at every budget point.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Maximum result rows (`None` = unlimited).
    pub max_rows: Option<u64>,
    /// Maximum approximate result bytes (`None` = unlimited).
    pub max_bytes: Option<u64>,
    spent: Arc<BudgetSpent>,
}

impl ExecBudget {
    /// No limits (the default for embedded callers).
    pub fn unlimited() -> ExecBudget {
        ExecBudget::default()
    }

    /// A budget that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> ExecBudget {
        ExecBudget {
            deadline: Some(Instant::now() + timeout),
            ..ExecBudget::default()
        }
    }

    /// A deadline/cancel budget (the server's per-request shape).
    pub fn with_deadline(deadline: Option<Instant>, cancel: Option<Arc<AtomicBool>>) -> ExecBudget {
        ExecBudget {
            deadline,
            cancel,
            ..ExecBudget::default()
        }
    }

    /// Caps the result size; `0` means unlimited for either cap.
    pub fn with_result_caps(mut self, max_rows: u64, max_bytes: u64) -> ExecBudget {
        self.max_rows = (max_rows > 0).then_some(max_rows);
        self.max_bytes = (max_bytes > 0).then_some(max_bytes);
        self
    }

    fn expired(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Charges `rows`/`bytes` against the result caps. Spending is shared
    /// across clones (batch statements), and deliberately not rolled back
    /// on failure: once over budget, every later charge fails too.
    fn charge(&self, rows: u64, bytes: u64) -> Result<()> {
        let spent_rows = self.spent.rows.fetch_add(rows, Ordering::Relaxed) + rows;
        let spent_bytes = self.spent.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if self.max_rows.is_some_and(|m| spent_rows > m)
            || self.max_bytes.is_some_and(|m| spent_bytes > m)
        {
            stage_metrics().budget_aborts.inc();
            return Err(GraphError::BudgetExceeded);
        }
        Ok(())
    }
}

thread_local! {
    static BUDGET: RefCell<ExecBudget> = RefCell::new(ExecBudget::default());
}

/// Restores the previous budget when an `execute_with_budget` scope ends,
/// so nested or sequential executions on one thread cannot leak limits.
struct BudgetGuard {
    prev: Option<ExecBudget>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            BUDGET.with(|b| *b.borrow_mut() = prev);
        }
    }
}

fn install_budget(budget: ExecBudget) -> BudgetGuard {
    BudgetGuard {
        prev: Some(BUDGET.with(|b| std::mem::replace(&mut *b.borrow_mut(), budget))),
    }
}

/// Aborts with [`GraphError::DeadlineExceeded`] when the installed
/// budget has expired. Called at executor loop boundaries.
pub(crate) fn check_budget() -> Result<()> {
    if BUDGET.with(|b| b.borrow().expired()) {
        Err(GraphError::DeadlineExceeded)
    } else {
        Ok(())
    }
}

/// Charges one result row (plus its approximate byte size) against the
/// installed budget's row/byte caps. Called wherever the executor emits
/// or materializes a row.
pub(crate) fn charge_row(row: &[Value]) -> Result<()> {
    let bytes = 8 + row.iter().map(Value::approx_bytes).sum::<u64>();
    BUDGET.with(|b| b.borrow().charge(1, bytes))
}

/// True when executing `query` cannot mutate the database, which makes
/// it safe for a client to retry after a transport failure (the server
/// may or may not have executed the lost attempt).
pub fn is_read_only(query: &Query) -> bool {
    match query {
        Query::Create { .. } => false,
        Query::Match { action, .. } => matches!(action, Action::Return(_)),
        // Procedures are analytic reads (series, diff, window, sleep).
        Query::Call { .. } => true,
    }
}

/// Per-stage executor metrics, resolved once per process.
pub(crate) struct StageMetrics {
    executed: Arc<obs::Counter>,
    parse_latency: Arc<obs::Histogram>,
    bind_latency: Arc<obs::Histogram>,
    filter_latency: Arc<obs::Histogram>,
    action_latency: Arc<obs::Histogram>,
    exec_latency: Arc<obs::Histogram>,
    /// Rows emitted by the streaming scan executor.
    pub(crate) rows_streamed: Arc<obs::Counter>,
    /// Pages served through `execute_paged`.
    pub(crate) pages_served: Arc<obs::Counter>,
    /// Queries aborted by the row/byte result budget.
    pub(crate) budget_aborts: Arc<obs::Counter>,
    /// Cursor tokens rejected as invalid (corrupt, mismatched, stale
    /// anchor).
    pub(crate) cursor_rejects: Arc<obs::Counter>,
}

pub(crate) fn stage_metrics() -> &'static StageMetrics {
    static METRICS: OnceLock<StageMetrics> = OnceLock::new();
    METRICS.get_or_init(|| StageMetrics {
        executed: obs::counter("query.executed"),
        parse_latency: obs::histogram("query.parse.latency_ns"),
        bind_latency: obs::histogram("query.bind.latency_ns"),
        filter_latency: obs::histogram("query.filter.latency_ns"),
        action_latency: obs::histogram("query.action.latency_ns"),
        exec_latency: obs::histogram("query.exec.latency_ns"),
        rows_streamed: obs::counter("query.rows_streamed"),
        pages_served: obs::counter("query.pages_served"),
        budget_aborts: obs::counter("query.budget_aborts"),
        cursor_rejects: obs::counter("query.cursor_rejects"),
    })
}

/// A tabular query result.
#[derive(Clone, PartialEq, Debug)]
pub struct QueryResult {
    /// Column names (from the RETURN items, or `affected` for writes).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    fn affected(n: usize) -> QueryResult {
        QueryResult {
            columns: vec!["affected".into()],
            rows: vec![vec![Value::Int(n as i64)]],
        }
    }
}

/// Parses and executes `text` against `db` with no execution budget.
pub fn execute(db: &Aion, text: &str, params: &Params) -> Result<QueryResult> {
    execute_with_budget(db, text, params, ExecBudget::unlimited())
}

/// Parses and executes `text` against `db` under `budget`: when the
/// deadline passes or the cancel flag is raised, execution aborts at the
/// next budget check with [`GraphError::DeadlineExceeded`]; when the
/// result outgrows the row/byte caps it aborts with
/// [`GraphError::BudgetExceeded`].
pub fn execute_with_budget(
    db: &Aion,
    text: &str,
    params: &Params,
    budget: ExecBudget,
) -> Result<QueryResult> {
    let m = stage_metrics();
    m.executed.inc();
    let _total = m.exec_latency.start_timer();
    let _budget = install_budget(budget);
    let query = {
        let _parse = m.parse_latency.start_timer();
        crate::parser::parse(text).map_err(|e| GraphError::Unknown(e.to_string()))?
    };
    run(db, &query, params)
}

/// Reference executor: parses and runs `text` through the materializing
/// path only (bind → filter → act), bypassing the streaming scan. The
/// pagination equivalence suite uses it as the independent oracle the
/// lazy stream must match byte-for-byte.
pub fn execute_reference(db: &Aion, text: &str, params: &Params) -> Result<QueryResult> {
    let _budget = install_budget(ExecBudget::unlimited());
    let query = crate::parser::parse(text).map_err(|e| GraphError::Unknown(e.to_string()))?;
    run_materialized_at(db, &query, params, db.latest_ts())
}

/// Executes an already-parsed query. Streamable shapes (single-node
/// point-in-time scans returning plain items) run through the lazy
/// [`crate::stream::ScanStream`] with `LIMIT` pushed down into the
/// stream; everything else materializes.
pub fn run(db: &Aion, query: &Query, params: &Params) -> Result<QueryResult> {
    run_at(db, query, params, db.latest_ts())
}

/// [`run`] with the implicit "latest" snapshot pinned to `default_ts`
/// (paged executions resolve it once and carry it in the cursor).
fn run_at(db: &Aion, query: &Query, params: &Params, default_ts: Timestamp) -> Result<QueryResult> {
    if let Some(plan) = crate::stream::plan_scan(db, query, params, default_ts)? {
        return run_scan_full(db, plan);
    }
    run_materialized_at(db, query, params, default_ts)
}

/// Drains a streamable scan with `LIMIT` pushed down: at most `limit`
/// rows are ever pulled (and therefore materialized), instead of
/// scanning everything and truncating afterwards.
fn run_scan_full(db: &Aion, plan: crate::stream::ScanPlan<'_>) -> Result<QueryResult> {
    let columns = return_columns(plan.items);
    let take = plan.limit.unwrap_or(usize::MAX);
    let mut stream = crate::stream::ScanStream::open(db, plan, None)?;
    let mut rows = Vec::new();
    while rows.len() < take {
        check_budget()?;
        match stream.next_row()? {
            Some(r) => rows.push(r),
            None => break,
        }
    }
    Ok(QueryResult { columns, rows })
}

/// The materializing executor (the seed path): full bind → filter → act,
/// then sort and truncate.
fn run_materialized_at(
    db: &Aion,
    query: &Query,
    params: &Params,
    default_ts: Timestamp,
) -> Result<QueryResult> {
    match query {
        Query::Create { patterns } => run_create(db, &[], patterns, params),
        Query::Match {
            time,
            patterns,
            predicates,
            action,
            order_by,
            limit,
        } => {
            let mut result =
                run_match(db, *time, patterns, predicates, action, params, default_ts)?;
            if let Action::Return(_) = action {
                if let Some(order) = order_by {
                    sort_rows(&mut result, order, params)?;
                }
                if let Some(n) = limit {
                    result.rows.truncate(*n);
                }
            }
            Ok(result)
        }
        Query::Call { name, args } => {
            let result = run_call(db, name, args, params)?;
            for row in &result.rows {
                check_budget()?;
                charge_row(row)?;
            }
            Ok(result)
        }
    }
}

/// RETURN column names, shared by the streaming and materializing paths.
pub(crate) fn return_columns(items: &[ReturnItem]) -> Vec<String> {
    items
        .iter()
        .map(|i| match i {
            ReturnItem::Var(v) => v.clone(),
            ReturnItem::Prop(v, k) => format!("{v}.{k}"),
            ReturnItem::Count(v) => format!("count({v})"),
            ReturnItem::Id(v) => format!("id({v})"),
        })
        .collect()
}

/// One page of a paged execution.
#[derive(Clone, Debug)]
pub struct Page {
    /// The page's rows (same columns as the unpaged result).
    pub result: QueryResult,
    /// Opaque resumable token; `None` when the result is complete.
    pub cursor: Option<Vec<u8>>,
    /// The snapshot timestamp the scan is pinned to.
    pub snapshot_ts: Timestamp,
}

/// Parses and executes one page of `text`: up to `page_size` rows, plus
/// an opaque cursor to resume with. The first page pins the snapshot
/// (implicit "latest" resolves once); resumed pages execute at the
/// pinned timestamp, so a paged scan is snapshot-consistent under
/// concurrent writers. A corrupt or mismatched `cursor`, or an anchor
/// that no longer resolves at the pinned snapshot, fails with
/// [`GraphError::CursorInvalid`] — never silently skipped or duplicated
/// rows.
pub fn execute_paged(
    db: &Aion,
    text: &str,
    params: &Params,
    budget: ExecBudget,
    page_size: usize,
    cursor: Option<&[u8]>,
) -> Result<Page> {
    let m = stage_metrics();
    m.executed.inc();
    let _total = m.exec_latency.start_timer();
    let _budget = install_budget(budget);
    let query = {
        let _parse = m.parse_latency.start_timer();
        crate::parser::parse(text).map_err(|e| GraphError::Unknown(e.to_string()))?
    };
    let page_size = page_size.max(1);
    if !is_read_only(&query) {
        return Err(GraphError::ExecError(
            "write queries cannot be paged".into(),
        ));
    }
    let fp = crate::cursor::fingerprint(text, params);
    let token = match cursor {
        None => None,
        Some(bytes) => {
            let t = crate::cursor::CursorToken::decode(bytes)
                .inspect_err(|_| m.cursor_rejects.inc())?;
            if t.fingerprint != fp {
                m.cursor_rejects.inc();
                return Err(GraphError::CursorInvalid(
                    "cursor was minted for a different query".into(),
                ));
            }
            Some(t)
        }
    };
    let default_ts = token.map_or_else(|| db.latest_ts(), |t| t.snapshot_ts);
    let out = match crate::stream::plan_scan(db, &query, params, default_ts)? {
        Some(plan) => page_stream(db, plan, token, fp, page_size),
        None => page_materialized(db, &query, params, token, fp, page_size, default_ts),
    };
    match &out {
        Ok(_) => m.pages_served.inc(),
        Err(GraphError::CursorInvalid(_)) => m.cursor_rejects.inc(),
        Err(_) => {}
    }
    out
}

/// One page through the streaming executor: resume strictly after the
/// revalidated anchor, pull at most `min(page_size, remaining LIMIT)`
/// rows — never materializing more than the page.
fn page_stream(
    db: &Aion,
    plan: crate::stream::ScanPlan<'_>,
    token: Option<crate::cursor::CursorToken>,
    fp: u64,
    page_size: usize,
) -> Result<Page> {
    use crate::cursor::{Anchor, CursorToken};
    let ts = plan.ts;
    let (after, prior) = match token {
        None => (None, 0),
        Some(CursorToken {
            anchor: Anchor::Key(k),
            rows_emitted,
            ..
        }) => {
            if !db.node_alive_at(NodeId::new(k), ts)? {
                return Err(GraphError::CursorInvalid(
                    "anchor node no longer resolves at the pinned snapshot".into(),
                ));
            }
            (Some(k), rows_emitted)
        }
        Some(_) => {
            return Err(GraphError::CursorInvalid(
                "anchor kind does not match the query plan".into(),
            ))
        }
    };
    let columns = return_columns(plan.items);
    let limit = plan.limit;
    let remaining = limit.map(|l| (l as u64).saturating_sub(prior));
    if remaining == Some(0) {
        return Ok(Page {
            result: QueryResult {
                columns,
                rows: Vec::new(),
            },
            cursor: None,
            snapshot_ts: ts,
        });
    }
    let take = remaining.map_or(page_size, |r| {
        page_size.min(usize::try_from(r).unwrap_or(usize::MAX))
    });
    let mut stream = crate::stream::ScanStream::open(db, plan, after)?;
    let mut rows = Vec::with_capacity(take.min(1024));
    while rows.len() < take {
        check_budget()?;
        match stream.next_row()? {
            Some(r) => rows.push(r),
            None => break,
        }
    }
    let emitted = prior + rows.len() as u64;
    let limit_done = limit.is_some_and(|l| emitted >= l as u64);
    let cursor = (rows.len() == take && !limit_done)
        .then_some(stream.last_key)
        .flatten()
        .map(|k| {
            CursorToken {
                snapshot_ts: ts,
                fingerprint: fp,
                rows_emitted: emitted,
                anchor: Anchor::Key(k),
            }
            .encode()
        });
    Ok(Page {
        result: QueryResult { columns, rows },
        cursor,
        snapshot_ts: ts,
    })
}

/// One page through the materializing fallback: re-execute the full
/// query at the pinned snapshot (deterministic — history is immutable
/// and scans are id-ordered) and slice the offset window.
fn page_materialized(
    db: &Aion,
    query: &Query,
    params: &Params,
    token: Option<crate::cursor::CursorToken>,
    fp: u64,
    page_size: usize,
    default_ts: Timestamp,
) -> Result<Page> {
    use crate::cursor::{Anchor, CursorToken};
    let offset = match token {
        None => 0,
        Some(CursorToken {
            anchor: Anchor::Offset(o),
            ..
        }) => o,
        Some(_) => {
            return Err(GraphError::CursorInvalid(
                "anchor kind does not match the query plan".into(),
            ))
        }
    };
    let full = run_materialized_at(db, query, params, default_ts)?;
    let total = full.rows.len();
    let (start, end) = crate::cursor::compute_page_window(total, offset, page_size)?;
    let rows = full.rows[start..end].to_vec();
    let cursor = (end < total).then(|| {
        CursorToken {
            snapshot_ts: default_ts,
            fingerprint: fp,
            rows_emitted: end as u64,
            anchor: Anchor::Offset(end as u64),
        }
        .encode()
    });
    Ok(Page {
        result: QueryResult {
            columns: full.columns,
            rows,
        },
        cursor,
        snapshot_ts: default_ts,
    })
}

/// Sorts result rows by an `ORDER BY` key (nulls last).
fn sort_rows(result: &mut QueryResult, order: &OrderBy, _params: &Params) -> Result<()> {
    let col = match &order.item {
        ReturnItem::Var(v) => result.columns.iter().position(|c| c == v),
        ReturnItem::Prop(v, k) => {
            let name = format!("{v}.{k}");
            result.columns.iter().position(|c| *c == name)
        }
        ReturnItem::Id(v) => {
            let name = format!("id({v})");
            result.columns.iter().position(|c| *c == name)
        }
        ReturnItem::Count(_) => None,
    };
    // Sorting by a non-returned key: fall back to resolving against a node
    // column's property when the sort item is `var.key` and `var` is a
    // returned column.
    enum Key {
        Column(usize),
        NodeProp(usize, String),
    }
    let key = match (col, &order.item) {
        (Some(i), _) => Key::Column(i),
        (None, ReturnItem::Prop(v, k)) => {
            let i =
                result.columns.iter().position(|c| c == v).ok_or_else(|| {
                    GraphError::Unknown(format!("ORDER BY: unknown variable {v}"))
                })?;
            Key::NodeProp(i, k.clone())
        }
        (None, other) => {
            return Err(GraphError::Unknown(format!(
                "ORDER BY key {other:?} is not in RETURN"
            )))
        }
    };
    let sort_value = |row: &Vec<Value>| -> Option<Value> {
        match &key {
            Key::Column(i) => row.get(*i).cloned(),
            Key::NodeProp(i, k) => match row.get(*i) {
                Some(Value::Node { props, .. }) | Some(Value::Rel { props, .. }) => props
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone()),
                _ => None,
            },
        }
    };
    result.rows.sort_by(|a, b| {
        let (va, vb) = (sort_value(a), sort_value(b));
        let ord = match (&va, &vb) {
            (Some(x), Some(y)) => value_order(x, y),
            (Some(_), None) => std::cmp::Ordering::Less, // nulls last
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        };
        if order.descending {
            ord.reverse()
        } else {
            ord
        }
    });
    Ok(())
}

fn value_order(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (x, y) => x.entity_id().cmp(&y.entity_id()),
    }
}

/// The temporal-procedure registry (Sec. 5.1): incremental analytics over
/// snapshot series, invoked from Cypher like the paper's GDS-style procs.
///
/// * `aion.avg(prop, start, end, step [, 'classic'])` → `(ts, avg)` rows
/// * `aion.bfs(sourceId, start, end, step [, 'classic'])` → `(ts, reached)`
/// * `aion.pagerank(start, end, step [, 'classic'])` → `(ts, topNode, rank)`
/// * `aion.sleep(ms)` → `(slept_ms)` after a budget-aware pause (ops/testing)
/// * `aion.diff(start, end)` → `(ts, op, entity)` rows (getDiff)
/// * `aion.window(start, end)` → member nodes of the union graph (getWindow)
fn run_call(db: &Aion, name: &str, args: &[Literal], params: &Params) -> Result<QueryResult> {
    use aion::procedures::ExecMode;
    let vals: Vec<Value> = args
        .iter()
        .map(|a| resolve_literal(a, params))
        .collect::<Result<_>>()?;
    let int_at = |i: usize| -> Result<u64> {
        vals.get(i)
            .and_then(Value::as_int)
            .map(|v| v as u64)
            .ok_or_else(|| GraphError::Unknown(format!("{name}: argument {i} must be an integer")))
    };
    let mode_at = |i: usize| -> ExecMode {
        match vals.get(i) {
            Some(Value::Str(s)) if s.eq_ignore_ascii_case("classic") => ExecMode::Classic,
            _ => ExecMode::Incremental,
        }
    };
    match name.to_ascii_lowercase().as_str() {
        // Holds the worker for `ms` milliseconds (capped at 10 s),
        // checking the execution budget between 5 ms slices. Exists for
        // operational testing: it makes "a slow request" deterministic,
        // so deadline aborts, drain, and force-close have exact tests.
        "aion.sleep" => {
            let ms = int_at(0)?.min(10_000);
            let until = Instant::now() + Duration::from_millis(ms);
            loop {
                check_budget()?;
                let now = Instant::now();
                if now >= until {
                    break;
                }
                std::thread::sleep((until - now).min(Duration::from_millis(5)));
            }
            Ok(QueryResult {
                columns: vec!["slept_ms".into()],
                rows: vec![vec![Value::Int(ms as i64)]],
            })
        }
        "aion.avg" => {
            let Some(Value::Str(prop)) = vals.first() else {
                return Err(GraphError::Unknown(
                    "aion.avg: first argument must be the property name".into(),
                ));
            };
            let key = db.intern(prop);
            let series = db.proc_avg_series(key, int_at(1)?, int_at(2)?, int_at(3)?, mode_at(4))?;
            Ok(QueryResult {
                columns: vec!["ts".into(), "avg".into()],
                rows: series
                    .points
                    .into_iter()
                    .map(|(ts, v)| {
                        vec![
                            Value::Int(ts as i64),
                            v.map(Value::Float).unwrap_or(Value::Null),
                        ]
                    })
                    .collect(),
            })
        }
        "aion.bfs" => {
            let source = NodeId::new(int_at(0)?);
            let series =
                db.proc_bfs_series(source, int_at(1)?, int_at(2)?, int_at(3)?, mode_at(4))?;
            Ok(QueryResult {
                columns: vec!["ts".into(), "reached".into()],
                rows: series
                    .points
                    .into_iter()
                    .map(|(ts, n)| vec![Value::Int(ts as i64), Value::Int(n as i64)])
                    .collect(),
            })
        }
        "aion.pagerank" => {
            let cfg = algo::pagerank::PageRankConfig::default();
            let series =
                db.proc_pagerank_series(cfg, int_at(0)?, int_at(1)?, int_at(2)?, mode_at(3))?;
            Ok(QueryResult {
                columns: vec!["ts".into(), "topNode".into(), "rank".into()],
                rows: series
                    .points
                    .into_iter()
                    .map(|(ts, ranks)| {
                        // NaN ranks (degenerate damping inputs) must not
                        // panic mid-query; total_cmp orders them below +inf.
                        let top = ranks
                            .iter()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(n, r)| (*n, *r));
                        match top {
                            Some((n, r)) => vec![
                                Value::Int(ts as i64),
                                Value::Int(n.raw() as i64),
                                Value::Float(r),
                            ],
                            None => vec![Value::Int(ts as i64), Value::Null, Value::Null],
                        }
                    })
                    .collect(),
            })
        }
        "aion.diff" => {
            // getDiff(start, end): one row per update in the window.
            let updates = db.get_diff(int_at(0)?, int_at(1)?)?;
            Ok(QueryResult {
                columns: vec!["ts".into(), "op".into(), "entity".into()],
                rows: updates
                    .into_iter()
                    .map(|u| {
                        let kind = match &u.op {
                            lpg::Update::AddNode { .. } => "addNode",
                            lpg::Update::DeleteNode { .. } => "deleteNode",
                            lpg::Update::AddRel { .. } => "addRel",
                            lpg::Update::DeleteRel { .. } => "deleteRel",
                            lpg::Update::SetNodeProp { .. } => "setNodeProp",
                            lpg::Update::RemoveNodeProp { .. } => "removeNodeProp",
                            lpg::Update::AddLabel { .. } => "addLabel",
                            lpg::Update::RemoveLabel { .. } => "removeLabel",
                            lpg::Update::SetRelProp { .. } => "setRelProp",
                            lpg::Update::RemoveRelProp { .. } => "removeRelProp",
                        };
                        vec![
                            Value::Int(u.ts as i64),
                            Value::Str(kind.into()),
                            Value::Int(u.op.entity().raw() as i64),
                        ]
                    })
                    .collect(),
            })
        }
        "aion.window" => {
            // getWindow(start, end): the union graph's size plus members.
            let g = db.get_window(int_at(0)?, int_at(1)?)?;
            let interner = db.interner();
            let mut rows: Vec<Vec<Value>> = g
                .nodes()
                .map(|n| vec![Value::from_node(n, interner, None)])
                .collect();
            rows.sort_by_key(|r| r[0].entity_id());
            Ok(QueryResult {
                columns: vec!["node".into()],
                rows,
            })
        }
        other => Err(GraphError::Unknown(format!("unknown procedure {other}"))),
    }
}

pub(crate) fn resolve_literal(lit: &Literal, params: &Params) -> Result<Value> {
    Ok(match lit {
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Param(name) => params
            .get(name)
            .cloned()
            .ok_or_else(|| GraphError::Unknown(format!("missing parameter ${name}")))?,
    })
}

fn literal_to_prop(lit: &Literal, db: &Aion, params: &Params) -> Result<PropertyValue> {
    Ok(match resolve_literal(lit, params)? {
        Value::Int(v) => PropertyValue::Int(v),
        Value::Float(v) => PropertyValue::Float(v),
        Value::Bool(v) => PropertyValue::Bool(v),
        Value::Str(s) => PropertyValue::Str(db.intern(&s)),
        other => {
            return Err(GraphError::Unknown(format!(
                "unsupported property literal {other:?}"
            )))
        }
    })
}

/// Extracts the `_id` property from a CREATE pattern's property map.
fn take_id(props: &[(String, Literal)], params: &Params) -> Result<Option<u64>> {
    for (k, v) in props {
        if k == "_id" {
            let val = resolve_literal(v, params)?;
            let id = val
                .as_int()
                .ok_or_else(|| GraphError::Unknown("_id must be an integer".into()))?;
            return Ok(Some(id as u64));
        }
    }
    Ok(None)
}

/// One bound row: variable → value.
type Binding = HashMap<String, Value>;

#[allow(clippy::too_many_arguments)]
fn run_match(
    db: &Aion,
    time: Option<TimeSpec>,
    patterns: &[Pattern],
    predicates: &[Predicate],
    action: &Action,
    params: &Params,
    default_ts: Timestamp,
) -> Result<QueryResult> {
    let range: TimeRange = time
        .map(TimeSpec::to_range)
        .unwrap_or(TimeRange::AsOf(default_ts));
    let window = range.to_half_open();
    let point_mode = range.is_point();
    let at: Timestamp = window.start;

    // Collect id constraints per variable.
    let mut id_of: HashMap<&str, u64> = HashMap::new();
    let mut app_time: Option<TimeRange> = None;
    for p in predicates {
        match p {
            Predicate::IdEquals(var, lit) => {
                let v = resolve_literal(lit, params)?;
                let id = v
                    .as_int()
                    .ok_or_else(|| GraphError::Unknown("id() must compare to an integer".into()))?;
                id_of.insert(var.as_str(), id as u64);
            }
            Predicate::AppTimeContainedIn(a, b) => {
                app_time = Some(TimeRange::ContainedIn(*a, *b));
            }
            Predicate::PropCmp(..) => {}
        }
    }

    // Bind patterns to rows.
    let bind_timer = stage_metrics().bind_latency.start_timer();
    let mut rows: Vec<Binding> = Vec::new();
    let interner = db.interner();
    for pattern in patterns {
        let anchor_var = pattern
            .start
            .var
            .clone()
            .unwrap_or_else(|| "_anchor".into());
        match &pattern.rel {
            None => {
                // Single node pattern.
                if let Some(&id) = pattern.start.var.as_deref().and_then(|v| id_of.get(v)) {
                    // Point or history lookup by id.
                    let versions = db.get_node(NodeId::new(id), window.start, window.end)?;
                    for v in versions {
                        let mut b = Binding::new();
                        let valid = (!point_mode).then_some((v.valid.start, v.valid.end));
                        b.insert(
                            anchor_var.clone(),
                            Value::from_node(&v.data, interner, valid),
                        );
                        push_binding(&mut rows, b, patterns.len() > 1);
                    }
                } else {
                    // Label scan over the snapshot at `at`, in ascending id
                    // order so results are deterministic (the offset-paging
                    // fallback re-executes per page and slices by position).
                    let g = db.get_graph_at(at)?;
                    let label = pattern.start.label.as_deref().map(|l| db.intern(l));
                    let mut scan: Vec<&lpg::Node> = g.nodes().collect();
                    scan.sort_by_key(|n| n.id);
                    for n in scan {
                        check_budget()?;
                        if let Some(l) = label {
                            if !n.has_label(l) {
                                continue;
                            }
                        }
                        let mut b = Binding::new();
                        b.insert(anchor_var.clone(), Value::from_node(n, interner, None));
                        push_binding(&mut rows, b, patterns.len() > 1);
                    }
                }
            }
            Some((rel, end)) => {
                // Direct relationship binding: `()-[r]->() WHERE id(r) = …`.
                if let Some(&rid) = rel.var.as_deref().and_then(|v| id_of.get(v)) {
                    let versions =
                        db.get_relationship(RelId::new(rid), window.start, window.end)?;
                    for v in versions {
                        let mut b = Binding::new();
                        let valid = (!point_mode).then_some((v.valid.start, v.valid.end));
                        if let Some(rv) = &rel.var {
                            b.insert(rv.clone(), Value::from_rel(&v.data, interner, valid));
                        }
                        push_binding(&mut rows, b, patterns.len() > 1);
                    }
                    continue;
                }
                // Anchored traversal: the anchor needs an id constraint.
                let Some(&anchor_id) = pattern.start.var.as_deref().and_then(|v| id_of.get(v))
                else {
                    return Err(GraphError::Unknown(
                        "traversal patterns require `id(anchor) = …` or `id(rel) = …` in WHERE"
                            .into(),
                    ));
                };
                let dir = match rel.direction {
                    RelDirection::Right => Direction::Outgoing,
                    RelDirection::Left => Direction::Incoming,
                    RelDirection::Undirected => Direction::Both,
                };
                if rel.hops <= 1 {
                    // Single hop: bind rel and neighbour.
                    let rel_type = rel.rel_type.as_deref().map(|t| db.intern(t));
                    let histories = db.get_relationships(
                        NodeId::new(anchor_id),
                        dir,
                        window.start,
                        window.end,
                    )?;
                    let anchor_node = db
                        .get_node(NodeId::new(anchor_id), window.start, window.end)?
                        .into_iter()
                        .next_back();
                    for chain in histories {
                        check_budget()?;
                        for v in chain {
                            if let Some(t) = rel_type {
                                if v.data.label != Some(t) {
                                    continue;
                                }
                            }
                            let other = v.data.other_end(NodeId::new(anchor_id));
                            let mut b = Binding::new();
                            if let Some(an) = &anchor_node {
                                b.insert(
                                    anchor_var.clone(),
                                    Value::from_node(&an.data, interner, None),
                                );
                            }
                            if let Some(rv) = &rel.var {
                                let valid = (!point_mode).then_some((v.valid.start, v.valid.end));
                                b.insert(rv.clone(), Value::from_rel(&v.data, interner, valid));
                            }
                            if let (Some(ev), Some(other)) = (&end.var, other) {
                                let node_versions =
                                    db.get_node(other, v.valid.start, v.valid.start + 1)?;
                                if let Some(nv) = node_versions.into_iter().next() {
                                    b.insert(
                                        ev.clone(),
                                        Value::from_node(&nv.data, interner, None),
                                    );
                                }
                            }
                            push_binding(&mut rows, b, patterns.len() > 1);
                        }
                    }
                } else {
                    // Variable-length expansion (Fig. 1b): planner-routed.
                    let hits = db.expand(NodeId::new(anchor_id), dir, rel.hops, at)?;
                    for (node_id, hop) in hits {
                        check_budget()?;
                        let versions = db.get_node(node_id, at, at)?;
                        let Some(v) = versions.into_iter().next() else {
                            continue;
                        };
                        let mut b = Binding::new();
                        if let Some(ev) = &end.var {
                            b.insert(ev.clone(), Value::from_node(&v.data, interner, None));
                        }
                        b.insert("_hop".into(), Value::Int(i64::from(hop)));
                        push_binding(&mut rows, b, patterns.len() > 1);
                    }
                }
            }
        }
    }

    drop(bind_timer);

    // Property predicates + application-time filter.
    let filter_timer = stage_metrics().filter_latency.start_timer();
    let mut kept: Vec<Binding> = Vec::with_capacity(rows.len());
    for b in rows {
        check_budget()?;
        let pass = {
            let b = &b;
            predicates.iter().all(|p| match p {
                Predicate::PropCmp(var, key, op, lit) => {
                    let Ok(expected) = resolve_literal(lit, params) else {
                        return false;
                    };
                    match b.get(var) {
                        Some(Value::Node { props, .. }) | Some(Value::Rel { props, .. }) => props
                            .iter()
                            .find(|(k, _)| k == key)
                            .map(|(_, actual)| value_cmp(actual, *op, &expected))
                            .unwrap_or(false),
                        _ => false,
                    }
                }
                Predicate::AppTimeContainedIn(..) => {
                    let Some(range) = app_time else { return true };
                    b.values().all(|v| app_time_pass(db, v, range))
                }
                Predicate::IdEquals(..) => true, // already applied at bind time
            })
        };
        if pass {
            kept.push(b);
        }
    }
    let rows = kept;
    drop(filter_timer);

    // Action.
    let _action_timer = stage_metrics().action_latency.start_timer();
    match action {
        Action::Return(items) => {
            let columns: Vec<String> = items
                .iter()
                .map(|i| match i {
                    ReturnItem::Var(v) => v.clone(),
                    ReturnItem::Prop(v, k) => format!("{v}.{k}"),
                    ReturnItem::Count(v) => format!("count({v})"),
                    ReturnItem::Id(v) => format!("id({v})"),
                })
                .collect();
            // Aggregation: any count() collapses to a single row.
            if items.iter().any(|i| matches!(i, ReturnItem::Count(_))) {
                let mut row = Vec::new();
                for item in items {
                    match item {
                        ReturnItem::Count(v) => {
                            let n = rows.iter().filter(|b| b.contains_key(v)).count();
                            row.push(Value::Int(n as i64));
                        }
                        _ => row.push(Value::Null),
                    }
                }
                charge_row(&row)?;
                return Ok(QueryResult {
                    columns,
                    rows: vec![row],
                });
            }
            let mut out = Vec::with_capacity(rows.len());
            for b in &rows {
                check_budget()?;
                let mut row = Vec::with_capacity(items.len());
                for item in items {
                    row.push(match item {
                        ReturnItem::Var(v) => b.get(v).cloned().unwrap_or(Value::Null),
                        ReturnItem::Prop(v, k) => match b.get(v) {
                            Some(Value::Node { props, .. }) | Some(Value::Rel { props, .. }) => {
                                props
                                    .iter()
                                    .find(|(key, _)| key == k)
                                    .map(|(_, v)| v.clone())
                                    .unwrap_or(Value::Null)
                            }
                            _ => Value::Null,
                        },
                        ReturnItem::Id(v) => b
                            .get(v)
                            .and_then(Value::entity_id)
                            .map(|id| Value::Int(id as i64))
                            .unwrap_or(Value::Null),
                        // The aggregate branch above returns early whenever
                        // a COUNT item is present, so reaching one here
                        // means the planner produced a malformed plan.
                        ReturnItem::Count(_) => {
                            return Err(GraphError::ExecError(
                                "COUNT item reached the non-aggregate row builder".into(),
                            ))
                        }
                    });
                }
                charge_row(&row)?;
                out.push(row);
            }
            Ok(QueryResult { columns, rows: out })
        }
        Action::Set(var, key, lit) => {
            let value = literal_to_prop(lit, db, params)?;
            let key = db.intern(key);
            let mut affected = 0;
            let targets: Vec<Value> = rows.iter().filter_map(|b| b.get(var).cloned()).collect();
            db.write(|txn| {
                for t in &targets {
                    match t {
                        Value::Node { id, .. } => {
                            txn.set_node_prop(NodeId::new(*id), key, value.clone())?
                        }
                        Value::Rel { id, .. } => {
                            txn.set_rel_prop(RelId::new(*id), key, value.clone())?
                        }
                        _ => continue,
                    }
                    affected += 1;
                }
                Ok(())
            })?;
            Ok(QueryResult::affected(affected))
        }
        Action::Delete(vars) => {
            let mut nodes = Vec::new();
            let mut rels = Vec::new();
            for b in &rows {
                for var in vars {
                    match b.get(var) {
                        Some(Value::Node { id, .. }) => nodes.push(NodeId::new(*id)),
                        Some(Value::Rel { id, .. }) => rels.push(RelId::new(*id)),
                        _ => {}
                    }
                }
            }
            nodes.dedup();
            rels.dedup();
            let affected = nodes.len() + rels.len();
            db.write(|txn| {
                for r in &rels {
                    txn.delete_rel(*r)?;
                }
                for n in &nodes {
                    txn.delete_node(*n)?;
                }
                Ok(())
            })?;
            Ok(QueryResult::affected(affected))
        }
        Action::Create(create_patterns) => {
            // Bindings from the MATCH part feed endpoint resolution.
            let bound: Vec<(String, u64)> = rows
                .first()
                .map(|b| {
                    b.iter()
                        .filter_map(|(k, v)| v.entity_id().map(|id| (k.clone(), id)))
                        .collect()
                })
                .unwrap_or_default();
            run_create(db, &bound, create_patterns, params)
        }
    }
}

pub(crate) fn value_cmp(actual: &Value, op: CmpOp, expected: &Value) -> bool {
    use std::cmp::Ordering;
    let ord = match (actual, expected) {
        (Value::Int(a), Value::Int(b)) => a.partial_cmp(b),
        (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
        (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
        (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
        (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
        (Value::Bool(a), Value::Bool(b)) => a.partial_cmp(b),
        _ => None,
    };
    matches!(
        (ord, op),
        (Some(Ordering::Equal), CmpOp::Eq | CmpOp::Le | CmpOp::Ge)
            | (Some(Ordering::Less), CmpOp::Lt | CmpOp::Le | CmpOp::Neq)
            | (Some(Ordering::Greater), CmpOp::Gt | CmpOp::Ge | CmpOp::Neq)
    )
}

pub(crate) fn app_time_pass(db: &Aion, v: &Value, range: TimeRange) -> bool {
    // Reconstruct a property bag in storage terms for the filter.
    let keys = db.app_time_keys();
    let props = match v {
        Value::Node { props, .. } | Value::Rel { props, .. } => props,
        _ => return true,
    };
    let mut bag: lpg::Props = Vec::new();
    for (k, v) in props {
        if let Value::Int(x) = v {
            let kid = db.intern(k);
            bag.push((kid, PropertyValue::Int(*x)));
        }
    }
    bag.sort_by_key(|(k, _)| *k);
    bitemporal::matches_app_time(&bag, range, keys)
}

fn push_binding(rows: &mut Vec<Binding>, b: Binding, cartesian: bool) {
    if cartesian && !rows.is_empty() {
        // Cross-product with existing rows for multi-pattern MATCH.
        // Only merge when variables are disjoint; collisions overwrite.
        let mut merged = Vec::with_capacity(rows.len());
        for existing in rows.iter() {
            let mut m = existing.clone();
            for (k, v) in &b {
                m.insert(k.clone(), v.clone());
            }
            merged.push(m);
        }
        *rows = merged;
    } else {
        rows.push(b);
    }
}

fn run_create(
    db: &Aion,
    bound: &[(String, u64)],
    patterns: &[Pattern],
    params: &Params,
) -> Result<QueryResult> {
    let mut affected = 0;
    // Pre-intern outside the closure.
    struct NodePlan {
        id: u64,
        labels: Vec<StrId>,
        props: Vec<(StrId, PropertyValue)>,
    }
    struct RelPlan {
        id: u64,
        src: u64,
        tgt: u64,
        label: Option<StrId>,
        props: Vec<(StrId, PropertyValue)>,
    }
    let mut node_plans: Vec<NodePlan> = Vec::new();
    let mut rel_plans: Vec<RelPlan> = Vec::new();
    let lookup = |var: &Option<String>, own: Option<u64>| -> Result<u64> {
        if let Some(id) = own {
            return Ok(id);
        }
        if let Some(v) = var {
            if let Some((_, id)) = bound.iter().find(|(name, _)| name == v) {
                return Ok(*id);
            }
        }
        Err(GraphError::Unknown(
            "CREATE endpoint needs a bound variable or an _id property".into(),
        ))
    };
    for p in patterns {
        let start_id = take_id(&p.start.props, params)?;
        // A bare bound variable creates nothing.
        let creates_start = start_id.is_some();
        let start = lookup(&p.start.var, start_id)?;
        if creates_start {
            node_plans.push(NodePlan {
                id: start,
                labels: p
                    .start
                    .label
                    .as_deref()
                    .map(|l| vec![db.intern(l)])
                    .unwrap_or_default(),
                props: convert_props(db, &p.start.props, params)?,
            });
        }
        if let Some((rel, end)) = &p.rel {
            let end_id = take_id(&end.props, params)?;
            let creates_end = end_id.is_some();
            let end_bound = lookup(&end.var, end_id)?;
            if creates_end {
                node_plans.push(NodePlan {
                    id: end_bound,
                    labels: end
                        .label
                        .as_deref()
                        .map(|l| vec![db.intern(l)])
                        .unwrap_or_default(),
                    props: convert_props(db, &end.props, params)?,
                });
            }
            let rel_id = take_id(&rel.props, params)?.ok_or_else(|| {
                GraphError::Unknown("CREATE relationship needs an _id property".into())
            })?;
            let (src, tgt) = match rel.direction {
                RelDirection::Left => (end_bound, start),
                _ => (start, end_bound),
            };
            rel_plans.push(RelPlan {
                id: rel_id,
                src,
                tgt,
                label: rel.rel_type.as_deref().map(|t| db.intern(t)),
                props: convert_props(db, &rel.props, params)?,
            });
        }
    }
    db.write(|txn| {
        for n in &node_plans {
            txn.add_node(NodeId::new(n.id), n.labels.clone(), n.props.clone())?;
            affected += 1;
        }
        for r in &rel_plans {
            txn.add_rel(
                RelId::new(r.id),
                NodeId::new(r.src),
                NodeId::new(r.tgt),
                r.label,
                r.props.clone(),
            )?;
            affected += 1;
        }
        Ok(())
    })?;
    Ok(QueryResult::affected(affected))
}

fn convert_props(
    db: &Aion,
    props: &[(String, Literal)],
    params: &Params,
) -> Result<Vec<(StrId, PropertyValue)>> {
    let mut out = Vec::new();
    for (k, v) in props {
        if k == "_id" {
            continue;
        }
        out.push((db.intern(k), literal_to_prop(v, db, params)?));
    }
    out.sort_by_key(|(k, _)| *k);
    Ok(out)
}
