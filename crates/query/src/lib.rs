//! # aion-query — temporal Cypher (Sec. 3 "Temporal Cypher")
//!
//! A hand-written lexer + recursive-descent parser (the role javaCC plays
//! in the paper) and an executor that routes through [`aion::Aion`]'s
//! planner. The supported grammar covers the constructs the paper
//! introduces and evaluates (Figs. 1a–c, Sec. 6.7):
//!
//! ```text
//! query      := [use] (match | create) ;
//! use        := "USE" "GDB" "FOR" "SYSTEM_TIME" timespec
//! timespec   := "AS" "OF" t
//!             | "FROM" t "TO" t
//!             | "BETWEEN" t "AND" t
//!             | "CONTAINED" "IN" "(" t "," t ")"
//! match      := "MATCH" pattern ("," pattern)* ["WHERE" predicates]
//!               (return | set | delete | create)
//! pattern    := node [rel node]
//! node       := "(" [var] [":" label] [props] ")"
//! rel        := "-[" [var] [":" type] ["*" hops] [props] "]->"
//!             | "<-[" … "]-" | "-[" … "]-"
//! predicates := pred ("AND" pred)*
//! pred       := "id(" var ")" "=" (int | param)
//!             | var "." key op literal
//!             | "APPLICATION_TIME" "CONTAINED" "IN" "(" t "," t ")"
//! return     := "RETURN" item ("," item)*
//! item       := var | var "." key | "count(" var ")"
//! create     := "CREATE" pattern ("," pattern)*
//! set        := "SET" var "." key "=" literal
//! delete     := "DELETE" var
//! ```
//!
//! Entity ids come from the `_id` property in `CREATE` patterns (the
//! reproduction's stand-in for Neo4j's internal id allocation), and `$name`
//! parameters are resolved from a parameter map at execution time.

pub mod ast;
pub mod cursor;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod stream;
pub mod value;

pub use ast::Query;
pub use cursor::{fingerprint, peek_snapshot_ts, Anchor, CursorToken};
pub use exec::{
    execute, execute_paged, execute_reference, execute_with_budget, is_read_only, ExecBudget, Page,
    Params, QueryResult,
};
pub use parser::parse;
pub use stream::{
    BudgetedOrderedKeyStream, IntersectOrderedKeyStream, MergeOrderedKeyStream, OrderedKeyStream,
    VecOrderedKeyStream,
};
pub use value::Value;
