//! Result values: the executor resolves interned strings back to text so
//! results are self-contained (what a driver would receive over Bolt).

use lpg::Interner;
use std::fmt;

/// A query result value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Absent value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// A node with resolved labels and properties. `valid` carries the
    /// system-time interval in history-mode results.
    Node {
        /// Node id.
        id: u64,
        /// Resolved labels.
        labels: Vec<String>,
        /// Resolved properties.
        props: Vec<(String, Value)>,
        /// `[τ_s, τ_e)` when the query returned a version history.
        valid: Option<(u64, u64)>,
    },
    /// A relationship with resolved type and properties.
    Rel {
        /// Relationship id.
        id: u64,
        /// Source node id.
        src: u64,
        /// Target node id.
        tgt: u64,
        /// Resolved type.
        rel_type: Option<String>,
        /// Resolved properties.
        props: Vec<(String, Value)>,
        /// Version interval in history-mode results.
        valid: Option<(u64, u64)>,
    },
    /// A list of values.
    List(Vec<Value>),
}

impl Value {
    /// Converts a storage property value, resolving string references.
    pub fn from_prop(v: &lpg::PropertyValue, interner: &Interner) -> Value {
        match v {
            lpg::PropertyValue::Int(x) => Value::Int(*x),
            lpg::PropertyValue::Float(x) => Value::Float(*x),
            lpg::PropertyValue::Bool(x) => Value::Bool(*x),
            lpg::PropertyValue::Str(s) => Value::Str(
                interner
                    .resolve(*s)
                    .map(|a| a.to_string())
                    .unwrap_or_default(),
            ),
            lpg::PropertyValue::IntArray(v) => {
                Value::List(v.iter().map(|x| Value::Int(*x)).collect())
            }
            lpg::PropertyValue::FloatArray(v) => {
                Value::List(v.iter().map(|x| Value::Float(*x)).collect())
            }
        }
    }

    /// Converts a node snapshot.
    pub fn from_node(n: &lpg::Node, interner: &Interner, valid: Option<(u64, u64)>) -> Value {
        Value::Node {
            id: n.id.raw(),
            labels: n
                .labels
                .iter()
                .filter_map(|l| interner.resolve(*l).map(|a| a.to_string()))
                .collect(),
            props: n
                .props
                .iter()
                .filter_map(|(k, v)| {
                    interner
                        .resolve(*k)
                        .map(|key| (key.to_string(), Value::from_prop(v, interner)))
                })
                .collect(),
            valid,
        }
    }

    /// Converts a relationship snapshot.
    pub fn from_rel(
        r: &lpg::Relationship,
        interner: &Interner,
        valid: Option<(u64, u64)>,
    ) -> Value {
        Value::Rel {
            id: r.id.raw(),
            src: r.src.raw(),
            tgt: r.tgt.raw(),
            rel_type: r
                .label
                .and_then(|l| interner.resolve(l).map(|a| a.to_string())),
            props: r
                .props
                .iter()
                .filter_map(|(k, v)| {
                    interner
                        .resolve(*k)
                        .map(|key| (key.to_string(), Value::from_prop(v, interner)))
                })
                .collect(),
            valid,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The id of a node/rel value.
    pub fn entity_id(&self) -> Option<u64> {
        match self {
            Value::Node { id, .. } | Value::Rel { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// Rough serialized footprint in bytes, used to charge result-size
    /// budgets. Deliberately cheap and stable: tag byte + fixed scalar
    /// widths + string lengths, recursing through containers.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 1 + 4 + s.len() as u64,
            Value::Node { labels, props, .. } => {
                let mut n = 1 + 8 + 17; // tag + id + valid interval
                for l in labels {
                    n += 4 + l.len() as u64;
                }
                for (k, v) in props {
                    n += 4 + k.len() as u64 + v.approx_bytes();
                }
                n
            }
            Value::Rel {
                rel_type, props, ..
            } => {
                let mut n = 1 + 24 + 17; // tag + ids + valid interval
                n += rel_type.as_ref().map_or(1, |t| 5 + t.len() as u64);
                for (k, v) in props {
                    n += 4 + k.len() as u64 + v.approx_bytes();
                }
                n
            }
            Value::List(vs) => 5 + vs.iter().map(Value::approx_bytes).sum::<u64>(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Node {
                id, labels, valid, ..
            } => {
                write!(f, "(#{id}")?;
                for l in labels {
                    write!(f, ":{l}")?;
                }
                if let Some((s, e)) = valid {
                    write!(f, " @[{s},{e})")?;
                }
                write!(f, ")")
            }
            Value::Rel {
                id,
                src,
                tgt,
                rel_type,
                ..
            } => {
                write!(f, "[#{id} {src}->{tgt}")?;
                if let Some(t) = rel_type {
                    write!(f, " :{t}")?;
                }
                write!(f, "]")
            }
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{NodeId, PropertyValue};

    #[test]
    fn conversion_resolves_strings() {
        let interner = Interner::new();
        let person = interner.intern("Person");
        let name = interner.intern("name");
        let ada = interner.intern("Ada");
        let n = lpg::Node::new(
            NodeId::new(7),
            vec![person],
            vec![(name, PropertyValue::Str(ada))],
        );
        let v = Value::from_node(&n, &interner, Some((1, 5)));
        assert!(matches!(v, Value::Node { .. }), "expected a node value");
        let Value::Node {
            id,
            labels,
            props,
            valid,
        } = &v
        else {
            return; // unreachable: asserted above
        };
        assert_eq!(*id, 7);
        assert_eq!(labels, &vec!["Person".to_string()]);
        assert_eq!(props[0], ("name".into(), Value::Str("Ada".into())));
        assert_eq!(*valid, Some((1, 5)));
        assert_eq!(v.entity_id(), Some(7));
        assert!(v.to_string().contains(":Person"));
    }
}
