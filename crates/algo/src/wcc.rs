//! Weakly connected components via union-find over a CSR projection.

use dyngraph::Csr;

/// Union-find with path halving and union by size.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Component label per dense slot (`None` for dead slots). Direction is
/// ignored (weak connectivity) — project with `Direction::Both` or
/// `Direction::Outgoing`; both give the same components.
pub fn wcc(csr: &Csr) -> Vec<Option<u32>> {
    let n = csr.node_slots();
    let mut dsu = Dsu::new(n);
    for d in 0..n as u32 {
        if !csr.live[d as usize] {
            continue;
        }
        for &t in csr.neighbours(d) {
            dsu.union(d, t);
        }
    }
    (0..n as u32)
        .map(|d| csr.live[d as usize].then(|| dsu.find(d)))
        .collect()
}

/// Number of distinct components.
pub fn component_count(labels: &[Option<u32>]) -> usize {
    let mut roots: Vec<u32> = labels.iter().flatten().copied().collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::DynGraph;
    use lpg::{Direction, NodeId, RelId, Update};

    fn graph_with_edges(n: u64, edges: &[(u64, u64)]) -> DynGraph {
        let mut g = DynGraph::new();
        for i in 0..n {
            g.apply(&Update::AddNode {
                id: NodeId::new(i),
                labels: vec![],
                props: vec![],
            })
            .unwrap();
        }
        for (i, (s, t)) in edges.iter().enumerate() {
            g.apply(&Update::AddRel {
                id: RelId::new(i as u64),
                src: NodeId::new(*s),
                tgt: NodeId::new(*t),
                label: None,
                props: vec![],
            })
            .unwrap();
        }
        g
    }

    #[test]
    fn two_components() {
        let g = graph_with_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let csr = dyngraph::Csr::project(&g, Direction::Outgoing, None);
        let labels = wcc(&csr);
        assert_eq!(component_count(&labels), 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
    }

    #[test]
    fn direction_does_not_matter() {
        let g = graph_with_edges(4, &[(1, 0), (2, 3)]);
        let out = wcc(&dyngraph::Csr::project(&g, Direction::Outgoing, None));
        let both = wcc(&dyngraph::Csr::project(&g, Direction::Both, None));
        assert_eq!(component_count(&out), component_count(&both));
        assert_eq!(component_count(&out), 2);
    }

    #[test]
    fn empty_graph() {
        let g = DynGraph::new();
        let csr = dyngraph::Csr::project(&g, Direction::Both, None);
        assert_eq!(component_count(&wcc(&csr)), 0);
    }
}
