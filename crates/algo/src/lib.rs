//! # aion-algo — graph algorithms: static, incremental, temporal
//!
//! The analytics layer of the reproduction. Three families, matching
//! Sec. 5.2 "Aion supports three categories of incremental algorithms":
//!
//! 1. **Non-holistic aggregations** — [`aggregate::IncrementalAvg`]
//!    maintains a running average over a relationship property from
//!    `getDiff` batches using stream-processing-style counters.
//! 2. **Monotonic path algorithms** — [`bfs`] (levels) and [`sssp`]
//!    (weighted distances) with incremental engines using the Kickstarter
//!    *tag & reset* technique for deletions: affected vertices are tagged,
//!    their values reset, and the tags propagated before re-relaxation.
//! 3. **Non-monotonic algorithms** — [`pagerank`] converges independently
//!    of initialization, so the incremental engine warm-starts from the
//!    previous snapshot's ranks and propagates changes until convergence.
//!
//! [`wcc`] (connected components) and [`clustering`] (local clustering
//! coefficient) cover the static/subgraph workloads referenced in Sec. 3,
//! and [`temporal_paths`] implements the single-scan earliest-arrival /
//! latest-departure computation over temporal LPGs (Fig. 2, following
//! Wu et al. and TeGraph's topological-optimum formulation).
//!
//! Static algorithms consume [`dyngraph::Csr`] projections (the GDS-style
//! path); incremental engines consume a [`dyngraph::DynGraph`] plus the
//! update diff between snapshots.

pub mod aggregate;
pub mod bfs;
pub mod clustering;
pub mod pagerank;
pub mod sssp;
pub mod temporal_paths;
pub mod wcc;

pub use aggregate::IncrementalAvg;
pub use bfs::{bfs_levels, IncrementalBfs};
pub use pagerank::{pagerank, IncrementalPageRank, PageRankConfig};
pub use sssp::{sssp, IncrementalSssp};
pub use temporal_paths::{earliest_arrival, fastest_duration, latest_departure};
pub use wcc::wcc;
