//! Temporal path problems over a temporal LPG (Fig. 2): earliest-arrival
//! and latest-departure paths, solved with the single-scan approach of
//! Wu et al. ("Path problems in temporal graphs") that TeGraph later casts
//! as a topological-optimum problem — no joins across snapshots.
//!
//! Interpretation of a relationship version's interval `[τ_s, τ_e)`: the
//! connection departs its source at `τ_s` and arrives at its target at
//! `τ_e` (the aviation reading of Fig. 2; an open-ended interval means the
//! link persists and traversal costs nothing beyond its start).

use lpg::{NodeId, Relationship, TemporalGraph, Timestamp, Version, TS_MAX};
use std::collections::HashMap;

fn sorted_by_departure(tg: &TemporalGraph) -> Vec<&Version<Relationship>> {
    let mut rels: Vec<&Version<Relationship>> = tg.rels.values().flat_map(|c| c.iter()).collect();
    rels.sort_by_key(|v| v.valid.start);
    rels
}

/// Earliest arrival time at every reachable node, starting from `source`
/// no earlier than `t_start`. One forward scan over relationships sorted by
/// departure time.
pub fn earliest_arrival(
    tg: &TemporalGraph,
    source: NodeId,
    t_start: Timestamp,
) -> HashMap<NodeId, Timestamp> {
    let mut arrival: HashMap<NodeId, Timestamp> = HashMap::new();
    arrival.insert(source, t_start);
    for v in sorted_by_departure(tg) {
        let dep = v.valid.start;
        let arr = if v.valid.end == TS_MAX {
            dep
        } else {
            v.valid.end
        };
        if let Some(&at_src) = arrival.get(&v.data.src) {
            // Board only if we are already at the source when it departs.
            if dep >= at_src {
                let best = arrival.get(&v.data.tgt).copied().unwrap_or(TS_MAX);
                if arr < best {
                    arrival.insert(v.data.tgt, arr);
                }
            }
        }
    }
    arrival
}

/// Latest departure time from every node that still reaches `target` by
/// `deadline`. One backward scan over relationships sorted by arrival time
/// (descending).
pub fn latest_departure(
    tg: &TemporalGraph,
    target: NodeId,
    deadline: Timestamp,
) -> HashMap<NodeId, Timestamp> {
    let mut departure: HashMap<NodeId, Timestamp> = HashMap::new();
    departure.insert(target, deadline);
    let mut rels: Vec<&Version<Relationship>> = tg.rels.values().flat_map(|c| c.iter()).collect();
    rels.sort_by_key(|v| std::cmp::Reverse(arrival_of(v)));
    for v in rels {
        let dep = v.valid.start;
        let arr = arrival_of(v);
        if let Some(&from_tgt) = departure.get(&v.data.tgt) {
            // Take this connection only if its arrival still leaves time to
            // continue from the target node.
            if arr <= from_tgt {
                let best = departure.get(&v.data.src).copied().unwrap_or(0);
                if dep > best || !departure.contains_key(&v.data.src) {
                    departure.insert(v.data.src, dep);
                }
            }
        }
    }
    departure
}

fn arrival_of(v: &Version<Relationship>) -> Timestamp {
    if v.valid.end == TS_MAX {
        v.valid.start
    } else {
        v.valid.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{Graph, Interval, RelId, TimestampedUpdate, Update};

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }

    /// An aviation network in the spirit of Fig. 2: airports 0..=4,
    /// flights as relationships whose interval is [departure, arrival).
    fn aviation() -> TemporalGraph {
        let base = Graph::new();
        let ts = 0u64;
        let mut updates = Vec::new();
        for i in 0..5u64 {
            updates.push(TimestampedUpdate::new(
                ts,
                Update::AddNode {
                    id: nid(i),
                    labels: vec![],
                    props: vec![],
                },
            ));
        }
        // flights: (id, src, tgt, dep, arr)
        let flights = [
            (0u64, 0u64, 2u64, 1u64, 3u64),
            (1, 2, 1, 4, 8), // connects from flight 0
            (2, 0, 3, 2, 5),
            (3, 3, 1, 10, 13), // slower alternative
            (4, 0, 4, 1, 4),
            (5, 4, 1, 5, 7), // 0→4→1 arrives 7
            (6, 2, 1, 2, 6), // departs before flight 0 arrives: unusable
        ];
        for (id, s, t, dep, arr) in flights {
            updates.push(TimestampedUpdate::new(
                dep,
                Update::AddRel {
                    id: RelId::new(id),
                    src: nid(s),
                    tgt: nid(t),
                    label: None,
                    props: vec![],
                },
            ));
            updates.push(TimestampedUpdate::new(
                arr,
                Update::DeleteRel { id: RelId::new(id) },
            ));
        }
        updates.sort_by_key(|u| u.ts);
        TemporalGraph::build(&base, Interval::new(0, 50), &updates)
    }

    #[test]
    fn earliest_arrival_chooses_feasible_connections() {
        let tg = aviation();
        let ea = earliest_arrival(&tg, nid(0), 0);
        assert_eq!(ea[&nid(0)], 0);
        assert_eq!(ea[&nid(2)], 3);
        assert_eq!(ea[&nid(4)], 4);
        // 0→4→1 arrives at 7; 0→2→1 arrives at 8; flight 6 departs at 2
        // (before we reach airport 2 at 3) so it is unusable.
        assert_eq!(ea[&nid(1)], 7);
    }

    #[test]
    fn earliest_arrival_respects_start_time() {
        let tg = aviation();
        // Starting at t=2 misses flights departing at 1.
        let ea = earliest_arrival(&tg, nid(0), 2);
        assert!(!ea.contains_key(&nid(2)), "flight 0 departs at 1 < 2");
        assert_eq!(ea[&nid(3)], 5);
        assert_eq!(ea[&nid(1)], 13, "only 0→3→1 remains");
    }

    #[test]
    fn latest_departure_backward_scan() {
        let tg = aviation();
        let ld = latest_departure(&tg, nid(1), 50);
        // From 3 we can leave at 10 (flight 3); from 0 the latest start
        // that still reaches 1 is flight 2 at t=2 (0→3 at 2, 3→1 at 10).
        assert_eq!(ld[&nid(3)], 10);
        assert_eq!(ld[&nid(2)], 4);
        assert_eq!(ld[&nid(4)], 5);
        assert_eq!(ld[&nid(0)], 2);
    }

    #[test]
    fn latest_departure_with_tight_deadline() {
        let tg = aviation();
        // Deadline 7: only 0→4→1 (arr 7) and its prefix work.
        let ld = latest_departure(&tg, nid(1), 7);
        assert_eq!(ld[&nid(4)], 5);
        assert_eq!(ld[&nid(2)], 2); // only flight 6 (arr 6 ≤ 7) works from 2
        assert_eq!(ld[&nid(0)], 1);
        assert!(!ld.contains_key(&nid(3)), "3→1 arrives 13 > 7");
    }

    #[test]
    fn unreachable_nodes_absent() {
        let tg = aviation();
        let ea = earliest_arrival(&tg, nid(1), 0);
        assert_eq!(ea.len(), 1, "airport 1 has no outgoing flights");
    }
}

/// Minimum travel duration from `source` to every reachable node — the
/// third classic temporal-path problem of Wu et al. One forward scan in
/// departure order maintaining, per node, a Pareto frontier of
/// `(start, arrival)` pairs (a pair dominates another when it starts later
/// *and* arrives earlier).
pub fn fastest_duration(tg: &TemporalGraph, source: NodeId) -> HashMap<NodeId, Timestamp> {
    // frontier[v] = non-dominated (start_from_source, arrival_at_v) pairs.
    let mut frontier: HashMap<NodeId, Vec<(Timestamp, Timestamp)>> = HashMap::new();
    let mut best: HashMap<NodeId, Timestamp> = HashMap::new();
    best.insert(source, 0);
    for v in sorted_by_departure(tg) {
        let dep = v.valid.start;
        let arr = arrival_of(v);
        // Best (latest) start that has us at the rel's source by `dep`.
        let start = if v.data.src == source {
            // Starting fresh from the source at exactly the departure time.
            Some(dep)
        } else {
            frontier
                .get(&v.data.src)
                .into_iter()
                .flatten()
                .filter(|(_, a)| *a <= dep)
                .map(|(s, _)| *s)
                .max()
        };
        let Some(start) = start else { continue };
        let pair = (start, arr);
        let entry = frontier.entry(v.data.tgt).or_default();
        // Insert unless dominated; drop pairs the new one dominates.
        let dominated = entry.iter().any(|(s, a)| *s >= pair.0 && *a <= pair.1);
        if !dominated {
            entry.retain(|(s, a)| !(pair.0 >= *s && pair.1 <= *a));
            entry.push(pair);
            let duration = arr - start;
            let cur = best.entry(v.data.tgt).or_insert(u64::MAX);
            if duration < *cur {
                *cur = duration;
            }
        }
    }
    best
}

#[cfg(test)]
mod fastest_tests {
    use super::*;
    use lpg::{Graph, Interval, RelId, TimestampedUpdate, Update};

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn network(flights: &[(u64, u64, u64, u64, u64)]) -> TemporalGraph {
        let mut updates = Vec::new();
        let max_node = flights.iter().map(|f| f.1.max(f.2)).max().unwrap_or(0);
        for i in 0..=max_node {
            updates.push(TimestampedUpdate::new(
                0,
                Update::AddNode {
                    id: nid(i),
                    labels: vec![],
                    props: vec![],
                },
            ));
        }
        for &(id, s, t, dep, arr) in flights {
            updates.push(TimestampedUpdate::new(
                dep,
                Update::AddRel {
                    id: RelId::new(id),
                    src: nid(s),
                    tgt: nid(t),
                    label: None,
                    props: vec![],
                },
            ));
            updates.push(TimestampedUpdate::new(
                arr,
                Update::DeleteRel { id: RelId::new(id) },
            ));
        }
        updates.sort_by_key(|u| u.ts);
        TemporalGraph::build(&Graph::new(), Interval::new(0, 1_000), &updates)
    }

    #[test]
    fn direct_vs_connection_duration() {
        // Direct 0→2 takes 15 (dep 5, arr 20); via 1 it takes 9
        // (dep 10 → arr 13, dep 15 → arr 19).
        let tg = network(&[(0, 0, 2, 5, 20), (1, 0, 1, 10, 13), (2, 1, 2, 15, 19)]);
        let fastest = fastest_duration(&tg, nid(0));
        assert_eq!(fastest[&nid(2)], 9, "connection beats the direct flight");
        assert_eq!(fastest[&nid(1)], 3);
    }

    #[test]
    fn later_start_can_be_fastest() {
        // Early slow option (dep 1, arr 20) vs late quick one (dep 50, arr 52).
        let tg = network(&[(0, 0, 1, 1, 20), (1, 0, 1, 50, 52)]);
        let fastest = fastest_duration(&tg, nid(0));
        assert_eq!(fastest[&nid(1)], 2);
    }

    #[test]
    fn pareto_frontier_keeps_useful_early_arrivals() {
        // To catch the 1→2 leg departing at 6, the slower-but-earlier
        // 0→1 arrival must survive in the frontier even though a later
        // start pair exists.
        let tg = network(&[
            (0, 0, 1, 1, 5), // start 1, arrive 5 (duration 4)
            (1, 0, 1, 7, 9), // start 7, arrive 9 (duration 2, dominates for node 1)
            (2, 1, 2, 6, 8), // only reachable via the early arrival
        ]);
        let fastest = fastest_duration(&tg, nid(0));
        assert_eq!(fastest[&nid(1)], 2);
        assert_eq!(fastest[&nid(2)], 7, "1 → 8 via the early pair");
    }

    #[test]
    fn unreachable_absent_and_source_zero() {
        let tg = network(&[(0, 0, 1, 1, 2)]);
        let fastest = fastest_duration(&tg, nid(1));
        assert_eq!(fastest.get(&nid(0)), None);
        assert_eq!(fastest[&nid(1)], 0);
    }
}
