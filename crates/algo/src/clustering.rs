//! Local clustering coefficient — the paper's example of a *subgraph*
//! query ("computing the local clustering coefficient", Sec. 3), computed
//! over the undirected neighbourhood of one node.

use dyngraph::DynGraph;
use lpg::{Direction, NodeId};
use std::collections::HashSet;

/// The local clustering coefficient of `node`: the fraction of pairs of
/// distinct neighbours that are themselves connected (either direction).
/// `None` when the node is absent; nodes with fewer than two neighbours
/// yield 0.
pub fn local_clustering_coefficient(graph: &DynGraph, node: NodeId) -> Option<f64> {
    graph.node(node)?;
    let mut neigh: Vec<NodeId> = graph.neighbours(node, Direction::Both);
    neigh.retain(|n| *n != node); // ignore self-loops
    let k = neigh.len();
    if k < 2 {
        return Some(0.0);
    }
    let set: HashSet<NodeId> = neigh.iter().copied().collect();
    let mut closed = 0usize;
    for &u in &neigh {
        for v in graph.neighbours(u, Direction::Both) {
            if v != u && v != node && set.contains(&v) {
                closed += 1;
            }
        }
    }
    // Each connected unordered neighbour pair is counted twice (once from
    // each endpoint), so dividing by the ordered-pair count k·(k−1) yields
    // the fraction of closed pairs.
    Some(closed as f64 / (k * (k - 1)) as f64)
}

/// Average clustering coefficient over all live nodes.
pub fn average_clustering(graph: &DynGraph) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for node in graph.nodes() {
        if let Some(c) = local_clustering_coefficient(graph, node.id) {
            sum += c;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{RelId, Update};

    fn graph_with_edges(n: u64, edges: &[(u64, u64)]) -> DynGraph {
        let mut g = DynGraph::new();
        for i in 0..n {
            g.apply(&Update::AddNode {
                id: NodeId::new(i),
                labels: vec![],
                props: vec![],
            })
            .unwrap();
        }
        for (i, (s, t)) in edges.iter().enumerate() {
            g.apply(&Update::AddRel {
                id: RelId::new(i as u64),
                src: NodeId::new(*s),
                tgt: NodeId::new(*t),
                label: None,
                props: vec![],
            })
            .unwrap();
        }
        g
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = graph_with_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        for i in 0..3 {
            assert_eq!(local_clustering_coefficient(&g, NodeId::new(i)), Some(1.0));
        }
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = graph_with_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(local_clustering_coefficient(&g, NodeId::new(0)), Some(0.0));
        assert_eq!(local_clustering_coefficient(&g, NodeId::new(1)), Some(0.0));
    }

    #[test]
    fn partial_clustering() {
        // 0 connects 1,2,3; only 1-2 closed.
        let g = graph_with_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let c = local_clustering_coefficient(&g, NodeId::new(0)).unwrap();
        // One of the three neighbour pairs is connected ⇒ 1/3.
        assert!((c - 1.0 / 3.0).abs() < 1e-12, "c = {c}");
    }

    #[test]
    fn missing_node() {
        let g = graph_with_edges(1, &[]);
        assert_eq!(local_clustering_coefficient(&g, NodeId::new(9)), None);
        assert_eq!(local_clustering_coefficient(&g, NodeId::new(0)), Some(0.0));
    }
}
