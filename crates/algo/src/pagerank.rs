//! PageRank: static power iteration over a CSR, and the incremental
//! variant that warm-starts from previous results (the paper's category of
//! "non-monotonic algorithms that converge to correct results independently
//! of node initialization", Sec. 5.2).

use dyngraph::{Csr, DynGraph};
use lpg::{Direction, NodeId};
use std::collections::HashMap;

/// PageRank parameters. The evaluation (Sec. 6.6) runs "either for up to
/// one hundred iterations or until a convergence threshold is reached,
/// which we set as ε = 0.01".
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor.
    pub damping: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// L1 convergence threshold ε.
    pub epsilon: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iters: 100,
            epsilon: 0.01,
        }
    }
}

/// The result of a PageRank run.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// Rank per dense node slot (dead slots hold 0).
    pub ranks: Vec<f64>,
    /// Iterations executed until convergence or the cap.
    pub iterations: usize,
}

/// Static PageRank by power iteration over the *outgoing* CSR.
pub fn pagerank(csr: &Csr, config: PageRankConfig) -> PageRankResult {
    let slots = csr.node_slots();
    let n = csr.live_count().max(1) as f64;
    let init = 1.0 / n;
    let ranks: Vec<f64> = csr
        .live
        .iter()
        .map(|l| if *l { init } else { 0.0 })
        .collect();
    power_iterate(csr, ranks, config, slots)
}

fn power_iterate(
    csr: &Csr,
    mut ranks: Vec<f64>,
    config: PageRankConfig,
    slots: usize,
) -> PageRankResult {
    let n = csr.live_count().max(1) as f64;
    let base = (1.0 - config.damping) / n;
    let mut next = vec![0.0f64; slots];
    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for d in 0..slots as u32 {
            if !csr.live[d as usize] {
                continue;
            }
            let deg = csr.degree(d);
            let r = ranks[d as usize];
            if deg == 0 {
                dangling += r;
            } else {
                let share = r / deg as f64;
                for &t in csr.neighbours(d) {
                    next[t as usize] += share;
                }
            }
        }
        let dangling_share = dangling / n;
        let mut delta = 0.0;
        for d in 0..slots {
            if !csr.live[d] {
                next[d] = 0.0;
                continue;
            }
            let v = base + config.damping * (next[d] + dangling_share);
            delta += (v - ranks[d]).abs();
            next[d] = v;
        }
        std::mem::swap(&mut ranks, &mut next);
        if delta < config.epsilon {
            break;
        }
    }
    PageRankResult { ranks, iterations }
}

/// Incremental PageRank: keeps the last converged ranks and, after a batch
/// of updates, re-runs power iteration *warm-started* from them. Changed
/// regions converge in a handful of iterations while unchanged regions stay
/// fixed — the change-propagation effect the paper leverages.
pub struct IncrementalPageRank {
    config: PageRankConfig,
    ranks: HashMap<NodeId, f64>,
    /// Iterations spent across all runs (for speedup accounting).
    pub total_iterations: usize,
}

impl IncrementalPageRank {
    /// A fresh engine.
    pub fn new(config: PageRankConfig) -> Self {
        IncrementalPageRank {
            config,
            ranks: HashMap::new(),
            total_iterations: 0,
        }
    }

    /// Computes ranks for `graph`, reusing the previous snapshot's ranks as
    /// the starting vector. Returns the per-node ranks.
    pub fn run(&mut self, graph: &DynGraph) -> HashMap<NodeId, f64> {
        let csr = Csr::project(graph, Direction::Outgoing, None);
        let slots = csr.node_slots();
        let n = csr.live_count().max(1) as f64;
        let init = 1.0 / n;
        // Warm start: prior rank where known, uniform share for new nodes.
        let mut start = vec![0.0f64; slots];
        let mut mass = 0.0;
        for d in 0..slots as u32 {
            if csr.live[d as usize] {
                let id = graph.sparse(d).expect("dense maps back");
                let r = self.ranks.get(&id).copied().unwrap_or(init);
                start[d as usize] = r;
                mass += r;
            }
        }
        // Renormalize so the vector still sums to 1 after adds/deletes.
        if mass > 0.0 {
            for v in &mut start {
                *v /= mass;
            }
        }
        let result = power_iterate(&csr, start, self.config, slots);
        self.total_iterations += result.iterations;
        self.ranks.clear();
        for d in 0..slots as u32 {
            if csr.live[d as usize] {
                let id = graph.sparse(d).expect("dense maps back");
                self.ranks.insert(id, result.ranks[d as usize]);
            }
        }
        self.ranks.clone()
    }

    /// Iterations used by the most recent run sequence.
    pub fn iterations(&self) -> usize {
        self.total_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{RelId, Update};

    fn line_graph(n: u64) -> DynGraph {
        let mut g = DynGraph::new();
        for i in 0..n {
            g.apply(&Update::AddNode {
                id: NodeId::new(i),
                labels: vec![],
                props: vec![],
            })
            .unwrap();
        }
        for i in 0..n - 1 {
            g.apply(&Update::AddRel {
                id: RelId::new(i),
                src: NodeId::new(i),
                tgt: NodeId::new(i + 1),
                label: None,
                props: vec![],
            })
            .unwrap();
        }
        g
    }

    fn tight() -> PageRankConfig {
        PageRankConfig {
            damping: 0.85,
            max_iters: 200,
            epsilon: 1e-9,
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = line_graph(20);
        let csr = Csr::project(&g, Direction::Outgoing, None);
        let r = pagerank(&csr, tight());
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn sink_of_a_line_has_highest_rank() {
        let g = line_graph(10);
        let csr = Csr::project(&g, Direction::Outgoing, None);
        let r = pagerank(&csr, tight());
        let max = r
            .ranks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max, 9, "last node accumulates rank");
        // Monotone along the line.
        for w in r.ranks.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = DynGraph::new();
        let csr = Csr::project(&g, Direction::Outgoing, None);
        let r = pagerank(&csr, PageRankConfig::default());
        assert!(r.ranks.is_empty());
        let mut g = DynGraph::new();
        g.apply(&Update::AddNode {
            id: NodeId::new(0),
            labels: vec![],
            props: vec![],
        })
        .unwrap();
        let csr = Csr::project(&g, Direction::Outgoing, None);
        let r = pagerank(&csr, tight());
        assert!((r.ranks[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let mut g = line_graph(30);
        let mut inc = IncrementalPageRank::new(tight());
        inc.run(&g);
        // Apply a structural change.
        g.apply(&Update::AddRel {
            id: RelId::new(100),
            src: NodeId::new(29),
            tgt: NodeId::new(0),
            label: None,
            props: vec![],
        })
        .unwrap();
        let inc_ranks = inc.run(&g);
        let csr = Csr::project(&g, Direction::Outgoing, None);
        let scratch = pagerank(&csr, tight());
        for d in 0..30u32 {
            let id = g.sparse(d).unwrap();
            let a = inc_ranks[&id];
            let b = scratch.ranks[d as usize];
            assert!((a - b).abs() < 1e-6, "node {id}: {a} vs {b}");
        }
    }

    #[test]
    fn warm_start_converges_faster() {
        let mut g = line_graph(200);
        let cfg = PageRankConfig {
            damping: 0.85,
            max_iters: 500,
            epsilon: 1e-8,
        };
        let mut inc = IncrementalPageRank::new(cfg);
        inc.run(&g);
        let after_first = inc.total_iterations;
        // Tiny change: one extra edge.
        g.apply(&Update::AddRel {
            id: RelId::new(500),
            src: NodeId::new(0),
            tgt: NodeId::new(100),
            label: None,
            props: vec![],
        })
        .unwrap();
        inc.run(&g);
        let second = inc.total_iterations - after_first;
        assert!(
            second < after_first,
            "warm start ({second}) should beat cold start ({after_first})"
        );
    }

    #[test]
    fn handles_deletions() {
        let mut g = line_graph(10);
        let mut inc = IncrementalPageRank::new(tight());
        inc.run(&g);
        g.apply(&Update::DeleteRel { id: RelId::new(4) }).unwrap();
        let inc_ranks = inc.run(&g);
        let csr = Csr::project(&g, Direction::Outgoing, None);
        let scratch = pagerank(&csr, tight());
        for d in 0..10u32 {
            let id = g.sparse(d).unwrap();
            assert!((inc_ranks[&id] - scratch.ranks[d as usize]).abs() < 1e-6);
        }
    }
}
