//! Breadth-first search: static levels plus the incremental engine with
//! Kickstarter-style *tag & reset* deletion handling (Sec. 5.2: "deleted
//! nodes are tagged, and their value is reset before propagating the tags
//! to the remaining graph").

use dyngraph::DynGraph;
use lpg::{Direction, NodeId, TimestampedUpdate, Update};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};

/// Static BFS: hop distance from `source` following outgoing relationships.
/// Unreachable nodes are absent from the map.
pub fn bfs_levels(graph: &DynGraph, source: NodeId) -> HashMap<NodeId, u32> {
    let mut levels = HashMap::new();
    if graph.node(source).is_none() {
        return levels;
    }
    let mut queue = VecDeque::new();
    levels.insert(source, 0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let lu = levels[&u];
        for rid in graph.adj(u, Direction::Outgoing) {
            let Some(rel) = graph.rel(*rid) else { continue };
            if let Entry::Vacant(slot) = levels.entry(rel.tgt) {
                slot.insert(lu + 1);
                queue.push_back(rel.tgt);
            }
        }
    }
    levels
}

/// Incremental BFS from a fixed source.
///
/// * Relationship **insertions** relax the new edge and propagate.
/// * Relationship/node **deletions** use tag & reset: every node whose
///   current level can no longer be justified by an in-neighbour is tagged,
///   the tag is propagated to dependents, tagged values are reset, and the
///   affected region is re-relaxed from its untagged frontier.
pub struct IncrementalBfs {
    source: NodeId,
    levels: HashMap<NodeId, u32>,
    /// Nodes whose level was recomputed across all batches (work metric).
    pub touched: usize,
}

impl IncrementalBfs {
    /// Initializes by running a full BFS on `graph`.
    pub fn new(graph: &DynGraph, source: NodeId) -> Self {
        let levels = bfs_levels(graph, source);
        IncrementalBfs {
            source,
            levels,
            touched: 0,
        }
    }

    /// Current levels.
    pub fn levels(&self) -> &HashMap<NodeId, u32> {
        &self.levels
    }

    /// Applies one diff batch; `graph` must already reflect the updates.
    pub fn apply_diff(&mut self, graph: &DynGraph, diff: &[TimestampedUpdate]) {
        let mut inserted_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut deletion_suspects: Vec<NodeId> = Vec::new();
        for u in diff {
            match &u.op {
                Update::AddRel { src, tgt, .. } => inserted_edges.push((*src, *tgt)),
                Update::DeleteRel { .. } => {
                    // The rel is gone from `graph`; we cannot know its
                    // endpoints from the op alone, so collect suspects below.
                }
                Update::AddNode { .. } | Update::DeleteNode { .. } => {}
                _ => {}
            }
        }
        let had_deletions = diff
            .iter()
            .any(|u| matches!(u.op, Update::DeleteRel { .. } | Update::DeleteNode { .. }));
        if had_deletions {
            // Tag: any settled node whose level is no longer justified.
            // (Kickstarter keeps per-edge dependencies; we conservatively
            // re-validate levels, which is correct and still avoids a full
            // re-traversal when the affected region is small.)
            for (&node, &level) in &self.levels {
                if node == self.source {
                    continue;
                }
                if !justified(graph, &self.levels, node, level) {
                    deletion_suspects.push(node);
                }
            }
            if !deletion_suspects.is_empty() {
                self.tag_and_reset(graph, deletion_suspects);
            }
            if graph.node(self.source).is_none() {
                self.levels.clear();
                return;
            }
        }
        // Relax insertions.
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for (src, tgt) in inserted_edges {
            if let Some(&ls) = self.levels.get(&src) {
                let cand = ls + 1;
                if self.levels.get(&tgt).is_none_or(|&lt| cand < lt) {
                    self.levels.insert(tgt, cand);
                    self.touched += 1;
                    queue.push_back(tgt);
                }
            }
        }
        self.relax_from(graph, &mut queue);
    }

    /// Tags `seeds` and every node transitively dependent on them, resets
    /// their levels, then re-relaxes from the untagged boundary.
    fn tag_and_reset(&mut self, graph: &DynGraph, seeds: Vec<NodeId>) {
        let mut tagged: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<NodeId> = seeds.into();
        while let Some(v) = queue.pop_front() {
            if !tagged.insert(v) {
                continue;
            }
            // Dependents: out-neighbours whose level came through v.
            let lv = self.levels.get(&v).copied();
            for rid in graph.adj(v, Direction::Outgoing) {
                let Some(rel) = graph.rel(*rid) else { continue };
                let w = rel.tgt;
                if tagged.contains(&w) {
                    continue;
                }
                if let (Some(lv), Some(&lw)) = (lv, self.levels.get(&w)) {
                    if lw == lv + 1 && !justified_excluding(graph, &self.levels, w, lw, &tagged) {
                        queue.push_back(w);
                    }
                }
            }
        }
        // Reset.
        for v in &tagged {
            self.levels.remove(v);
            self.touched += 1;
        }
        // Re-relax: frontier = untagged nodes adjacent to the reset region.
        let mut frontier: VecDeque<NodeId> = VecDeque::new();
        for v in &tagged {
            for rid in graph.adj(*v, Direction::Incoming) {
                let Some(rel) = graph.rel(*rid) else { continue };
                if self.levels.contains_key(&rel.src) {
                    frontier.push_back(rel.src);
                }
            }
        }
        self.relax_from(graph, &mut frontier);
    }

    fn relax_from(&mut self, graph: &DynGraph, queue: &mut VecDeque<NodeId>) {
        while let Some(u) = queue.pop_front() {
            let Some(&lu) = self.levels.get(&u) else {
                continue;
            };
            for rid in graph.adj(u, Direction::Outgoing) {
                let Some(rel) = graph.rel(*rid) else { continue };
                let cand = lu + 1;
                if self.levels.get(&rel.tgt).is_none_or(|&lt| cand < lt) {
                    self.levels.insert(rel.tgt, cand);
                    self.touched += 1;
                    queue.push_back(rel.tgt);
                }
            }
        }
    }
}

/// Does some in-neighbour justify `node` at `level`?
fn justified(graph: &DynGraph, levels: &HashMap<NodeId, u32>, node: NodeId, level: u32) -> bool {
    graph.adj(node, Direction::Incoming).iter().any(|rid| {
        graph
            .rel(*rid)
            .and_then(|r| levels.get(&r.src))
            .is_some_and(|&ls| ls + 1 == level)
    })
}

fn justified_excluding(
    graph: &DynGraph,
    levels: &HashMap<NodeId, u32>,
    node: NodeId,
    level: u32,
    excluded: &HashSet<NodeId>,
) -> bool {
    graph.adj(node, Direction::Incoming).iter().any(|rid| {
        graph
            .rel(*rid)
            .filter(|r| !excluded.contains(&r.src))
            .and_then(|r| levels.get(&r.src))
            .is_some_and(|&ls| ls + 1 == level)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::RelId;

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: nid(i),
            labels: vec![],
            props: vec![],
        }
    }

    fn add_rel(id: u64, s: u64, t: u64) -> Update {
        Update::AddRel {
            id: RelId::new(id),
            src: nid(s),
            tgt: nid(t),
            label: None,
            props: vec![],
        }
    }

    fn tsu(ts: u64, op: Update) -> TimestampedUpdate {
        TimestampedUpdate::new(ts, op)
    }

    /// 0→1→2→3 and 0→4→3 (two paths to 3).
    fn diamond() -> DynGraph {
        let mut g = DynGraph::new();
        for i in 0..5 {
            g.apply(&add_node(i)).unwrap();
        }
        for (id, s, t) in [(0u64, 0, 1), (1, 1, 2), (2, 2, 3), (3, 0, 4), (4, 4, 3)] {
            g.apply(&add_rel(id, s, t)).unwrap();
        }
        g
    }

    #[test]
    fn static_levels() {
        let g = diamond();
        let l = bfs_levels(&g, nid(0));
        assert_eq!(l[&nid(0)], 0);
        assert_eq!(l[&nid(1)], 1);
        assert_eq!(l[&nid(4)], 1);
        assert_eq!(l[&nid(2)], 2);
        assert_eq!(l[&nid(3)], 2, "shorter path via 4");
        assert!(bfs_levels(&g, nid(99)).is_empty());
    }

    #[test]
    fn incremental_insertion_improves_levels() {
        let mut g = diamond();
        let mut inc = IncrementalBfs::new(&g, nid(0));
        // New shortcut 0→3.
        let op = add_rel(10, 0, 3);
        g.apply(&op).unwrap();
        inc.apply_diff(&g, &[tsu(1, op)]);
        assert_eq!(inc.levels()[&nid(3)], 1);
        assert_eq!(inc.levels().clone(), bfs_levels(&g, nid(0)));
    }

    #[test]
    fn incremental_deletion_tag_and_reset() {
        let mut g = diamond();
        let mut inc = IncrementalBfs::new(&g, nid(0));
        // Remove 0→4: node 4 loses its level-1 path; 3 still level 2? No —
        // 3 was level 2 via 4; now only via 2 at level 3.
        let op = Update::DeleteRel { id: RelId::new(3) };
        g.apply(&op).unwrap();
        inc.apply_diff(&g, &[tsu(1, op)]);
        let want = bfs_levels(&g, nid(0));
        assert_eq!(inc.levels().clone(), want);
        assert_eq!(want.get(&nid(4)), None, "4 unreachable");
        assert_eq!(want[&nid(3)], 3);
    }

    #[test]
    fn deletion_disconnecting_component() {
        let mut g = diamond();
        let mut inc = IncrementalBfs::new(&g, nid(0));
        for rel in [0u64, 3] {
            let op = Update::DeleteRel {
                id: RelId::new(rel),
            };
            g.apply(&op).unwrap();
            inc.apply_diff(&g, &[tsu(rel + 1, op)]);
        }
        let want = bfs_levels(&g, nid(0));
        assert_eq!(inc.levels().clone(), want);
        assert_eq!(want.len(), 1, "only the source remains reachable");
    }

    #[test]
    fn mixed_batches_match_scratch() {
        let mut g = diamond();
        let mut inc = IncrementalBfs::new(&g, nid(0));
        let batch = vec![
            tsu(1, add_node(5)),
            tsu(1, add_rel(20, 3, 5)),
            tsu(1, Update::DeleteRel { id: RelId::new(1) }),
        ];
        for u in &batch {
            g.apply(&u.op).unwrap();
        }
        inc.apply_diff(&g, &batch);
        assert_eq!(inc.levels().clone(), bfs_levels(&g, nid(0)));
    }

    #[test]
    fn cycles_handled() {
        let mut g = DynGraph::new();
        for i in 0..4 {
            g.apply(&add_node(i)).unwrap();
        }
        for (id, s, t) in [(0u64, 0, 1), (1, 1, 2), (2, 2, 0), (3, 2, 3)] {
            g.apply(&add_rel(id, s, t)).unwrap();
        }
        let mut inc = IncrementalBfs::new(&g, nid(0));
        // Delete 1→2: the cycle collapses; 2 and 3 become unreachable.
        let op = Update::DeleteRel { id: RelId::new(1) };
        g.apply(&op).unwrap();
        inc.apply_diff(&g, &[tsu(1, op)]);
        assert_eq!(inc.levels().clone(), bfs_levels(&g, nid(0)));
        assert!(!inc.levels().contains_key(&nid(2)));
        assert!(!inc.levels().contains_key(&nid(3)));
    }
}
