//! Non-holistic aggregations over diffs (Sec. 5.2 category i): a running
//! global average of a relationship property, maintained from `getDiff`
//! batches with stream-processing-style counters — "no expensive dependency
//! tracking is required for deletions" (Sec. 6.6), but the engine must
//! remember each live relationship's contribution so a deletion can retract
//! it.

use dyngraph::DynGraph;
use lpg::{PropertyValue, RelId, StrId, TimestampedUpdate, Update};
use std::collections::HashMap;

/// Running `AVG(rel.prop)` maintained incrementally.
#[derive(Clone, Debug)]
pub struct IncrementalAvg {
    key: StrId,
    sum: f64,
    count: u64,
    /// Live contribution per relationship (needed to retract on delete).
    contributions: HashMap<RelId, f64>,
}

impl IncrementalAvg {
    /// An empty aggregate over property `key`.
    pub fn new(key: StrId) -> Self {
        IncrementalAvg {
            key,
            sum: 0.0,
            count: 0,
            contributions: HashMap::new(),
        }
    }

    /// Bootstraps from an existing graph.
    pub fn from_graph(graph: &DynGraph, key: StrId) -> Self {
        let mut agg = IncrementalAvg::new(key);
        for rel in graph.rels() {
            if let Some(v) = rel.prop(key).and_then(PropertyValue::as_float) {
                agg.add(rel.id, v);
            }
        }
        agg
    }

    fn add(&mut self, id: RelId, v: f64) {
        if let Some(old) = self.contributions.insert(id, v) {
            self.sum -= old;
            self.count -= 1;
        }
        self.sum += v;
        self.count += 1;
    }

    fn remove(&mut self, id: RelId) {
        if let Some(old) = self.contributions.remove(&id) {
            self.sum -= old;
            self.count -= 1;
        }
    }

    /// Applies one diff batch (order within the batch is respected).
    pub fn apply_diff(&mut self, diff: &[TimestampedUpdate]) {
        for u in diff {
            match &u.op {
                Update::AddRel { id, props, .. } => {
                    if let Some(v) = props
                        .iter()
                        .find(|(k, _)| *k == self.key)
                        .and_then(|(_, v)| v.as_float())
                    {
                        self.add(*id, v);
                    }
                }
                Update::DeleteRel { id } => self.remove(*id),
                Update::SetRelProp { id, key, value } if *key == self.key => {
                    match value.as_float() {
                        Some(v) => self.add(*id, v),
                        None => self.remove(*id),
                    }
                }
                Update::RemoveRelProp { id, key } if *key == self.key => self.remove(*id),
                _ => {}
            }
        }
    }

    /// The current average (`None` when no relationship carries the
    /// property).
    pub fn value(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Live contributing relationships.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// From-scratch `AVG(rel.prop)` — the classic (non-incremental) baseline.
pub fn avg_rel_property(graph: &DynGraph, key: StrId) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0u64;
    for rel in graph.rels() {
        if let Some(v) = rel.prop(key).and_then(PropertyValue::as_float) {
            sum += v;
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::NodeId;

    const K: StrId = StrId(7);

    fn tsu(op: Update) -> TimestampedUpdate {
        TimestampedUpdate::new(1, op)
    }

    fn add_rel(id: u64, v: Option<f64>) -> Update {
        Update::AddRel {
            id: RelId::new(id),
            src: NodeId::new(0),
            tgt: NodeId::new(1),
            label: None,
            props: v
                .map(|x| (K, PropertyValue::Float(x)))
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn running_average_tracks_inserts_and_deletes() {
        let mut agg = IncrementalAvg::new(K);
        assert_eq!(agg.value(), None);
        agg.apply_diff(&[tsu(add_rel(1, Some(10.0))), tsu(add_rel(2, Some(20.0)))]);
        assert_eq!(agg.value(), Some(15.0));
        agg.apply_diff(&[tsu(Update::DeleteRel { id: RelId::new(1) })]);
        assert_eq!(agg.value(), Some(20.0));
        agg.apply_diff(&[tsu(Update::DeleteRel { id: RelId::new(2) })]);
        assert_eq!(agg.value(), None);
    }

    #[test]
    fn property_updates_replace_contribution() {
        let mut agg = IncrementalAvg::new(K);
        agg.apply_diff(&[tsu(add_rel(1, Some(10.0)))]);
        agg.apply_diff(&[tsu(Update::SetRelProp {
            id: RelId::new(1),
            key: K,
            value: PropertyValue::Float(30.0),
        })]);
        assert_eq!(agg.value(), Some(30.0));
        assert_eq!(agg.count(), 1);
        agg.apply_diff(&[tsu(Update::RemoveRelProp {
            id: RelId::new(1),
            key: K,
        })]);
        assert_eq!(agg.value(), None);
    }

    #[test]
    fn rels_without_property_ignored() {
        let mut agg = IncrementalAvg::new(K);
        agg.apply_diff(&[tsu(add_rel(1, None)), tsu(add_rel(2, Some(4.0)))]);
        assert_eq!(agg.value(), Some(4.0));
        // Late property set counts from then on.
        agg.apply_diff(&[tsu(Update::SetRelProp {
            id: RelId::new(1),
            key: K,
            value: PropertyValue::Int(8),
        })]);
        assert_eq!(agg.value(), Some(6.0));
    }

    #[test]
    fn matches_from_scratch_baseline() {
        let mut g = DynGraph::new();
        for i in 0..2 {
            g.apply(&Update::AddNode {
                id: NodeId::new(i),
                labels: vec![],
                props: vec![],
            })
            .unwrap();
        }
        let mut agg = IncrementalAvg::from_graph(&g, K);
        for i in 0..20u64 {
            let op = add_rel(i, Some(i as f64));
            g.apply(&op).unwrap();
            agg.apply_diff(&[tsu(op)]);
        }
        for i in (0..20u64).step_by(3) {
            let op = Update::DeleteRel { id: RelId::new(i) };
            g.apply(&op).unwrap();
            agg.apply_diff(&[tsu(op)]);
        }
        assert_eq!(agg.value(), avg_rel_property(&g, K));
    }
}
