//! Single-source shortest paths (weighted) with an incremental engine —
//! the second monotonic path algorithm of Sec. 5.2, using the same tag &
//! reset discipline as BFS but over weighted distances.

use dyngraph::DynGraph;
use lpg::{Direction, NodeId, PropertyValue, StrId, TimestampedUpdate, Update};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

fn weight_of(rel: &lpg::Relationship, key: Option<StrId>) -> f64 {
    key.and_then(|k| rel.prop(k))
        .and_then(PropertyValue::as_float)
        .unwrap_or(1.0)
        .max(0.0)
}

/// Static Dijkstra from `source`; weights from `weight_key` (missing ⇒ 1).
pub fn sssp(graph: &DynGraph, source: NodeId, weight_key: Option<StrId>) -> HashMap<NodeId, f64> {
    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    if graph.node(source).is_none() {
        return dist;
    }
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(Reverse((0, source)));
    while let Some(Reverse((du_bits, u))) = heap.pop() {
        let du = f64::from_bits(du_bits);
        if dist.get(&u).copied().unwrap_or(f64::INFINITY) < du {
            continue; // stale entry
        }
        for rid in graph.adj(u, Direction::Outgoing) {
            let Some(rel) = graph.rel(*rid) else { continue };
            let cand = du + weight_of(rel, weight_key);
            if dist.get(&rel.tgt).is_none_or(|&d| cand < d) {
                dist.insert(rel.tgt, cand);
                heap.push(Reverse((cand.to_bits(), rel.tgt)));
            }
        }
    }
    dist
}

/// Incremental SSSP: insertions relax; deletions tag & reset the dependent
/// region, then Dijkstra re-settles it from the untagged boundary.
pub struct IncrementalSssp {
    source: NodeId,
    weight_key: Option<StrId>,
    dist: HashMap<NodeId, f64>,
    /// Nodes recomputed across batches (work metric).
    pub touched: usize,
}

impl IncrementalSssp {
    /// Full Dijkstra to initialize.
    pub fn new(graph: &DynGraph, source: NodeId, weight_key: Option<StrId>) -> Self {
        IncrementalSssp {
            source,
            weight_key,
            dist: sssp(graph, source, weight_key),
            touched: 0,
        }
    }

    /// Current distances.
    pub fn distances(&self) -> &HashMap<NodeId, f64> {
        &self.dist
    }

    /// Applies one diff batch; `graph` must already reflect the updates.
    pub fn apply_diff(&mut self, graph: &DynGraph, diff: &[TimestampedUpdate]) {
        let had_deletions = diff.iter().any(|u| {
            matches!(
                u.op,
                Update::DeleteRel { .. } | Update::DeleteNode { .. } | Update::SetRelProp { .. }
            )
        });
        if had_deletions {
            // Weight increases behave like deletions: re-validate.
            let mut suspects = Vec::new();
            for (&node, &d) in &self.dist {
                if node == self.source {
                    continue;
                }
                if !self.justified(graph, node, d, &HashSet::new()) {
                    suspects.push(node);
                }
            }
            if !suspects.is_empty() {
                self.tag_and_reset(graph, suspects);
            }
            if graph.node(self.source).is_none() {
                self.dist.clear();
                return;
            }
        }
        // Relax insertions / decreased weights.
        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        for u in diff {
            match &u.op {
                Update::AddRel { src, .. } => {
                    if let Some(&ds) = self.dist.get(src) {
                        heap.push(Reverse((ds.to_bits(), *src)));
                    }
                }
                Update::SetRelProp { id, .. } => {
                    if let Some(rel) = graph.rel(*id) {
                        if let Some(&ds) = self.dist.get(&rel.src) {
                            heap.push(Reverse((ds.to_bits(), rel.src)));
                        }
                    }
                }
                _ => {}
            }
        }
        self.settle(graph, heap);
    }

    fn justified(
        &self,
        graph: &DynGraph,
        node: NodeId,
        d: f64,
        excluded: &HashSet<NodeId>,
    ) -> bool {
        graph.adj(node, Direction::Incoming).iter().any(|rid| {
            graph
                .rel(*rid)
                .filter(|r| !excluded.contains(&r.src))
                .and_then(|r| {
                    self.dist
                        .get(&r.src)
                        .map(|&ds| ds + weight_of(r, self.weight_key))
                })
                .is_some_and(|cand| (cand - d).abs() < 1e-12)
        })
    }

    fn tag_and_reset(&mut self, graph: &DynGraph, seeds: Vec<NodeId>) {
        let mut tagged: HashSet<NodeId> = HashSet::new();
        let mut queue: Vec<NodeId> = seeds;
        while let Some(v) = queue.pop() {
            if !tagged.insert(v) {
                continue;
            }
            for rid in graph.adj(v, Direction::Outgoing) {
                let Some(rel) = graph.rel(*rid) else { continue };
                let w = rel.tgt;
                if tagged.contains(&w) || !self.dist.contains_key(&w) {
                    continue;
                }
                let dw = self.dist[&w];
                if !self.justified(graph, w, dw, &tagged) {
                    queue.push(w);
                }
            }
        }
        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        for v in &tagged {
            self.dist.remove(v);
            self.touched += 1;
        }
        for v in &tagged {
            for rid in graph.adj(*v, Direction::Incoming) {
                let Some(rel) = graph.rel(*rid) else { continue };
                if let Some(&ds) = self.dist.get(&rel.src) {
                    heap.push(Reverse((ds.to_bits(), rel.src)));
                }
            }
        }
        self.settle(graph, heap);
    }

    fn settle(&mut self, graph: &DynGraph, mut heap: BinaryHeap<Reverse<(u64, NodeId)>>) {
        while let Some(Reverse((du_bits, u))) = heap.pop() {
            let du = f64::from_bits(du_bits);
            if self.dist.get(&u).copied().unwrap_or(f64::INFINITY) < du {
                continue;
            }
            for rid in graph.adj(u, Direction::Outgoing) {
                let Some(rel) = graph.rel(*rid) else { continue };
                let cand = du + weight_of(rel, self.weight_key);
                if self.dist.get(&rel.tgt).is_none_or(|&d| cand < d) {
                    self.dist.insert(rel.tgt, cand);
                    self.touched += 1;
                    heap.push(Reverse((cand.to_bits(), rel.tgt)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::RelId;

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }
    const W: StrId = StrId(0);

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: nid(i),
            labels: vec![],
            props: vec![],
        }
    }

    fn add_wrel(id: u64, s: u64, t: u64, w: f64) -> Update {
        Update::AddRel {
            id: RelId::new(id),
            src: nid(s),
            tgt: nid(t),
            label: None,
            props: vec![(W, PropertyValue::Float(w))],
        }
    }

    fn tsu(op: Update) -> TimestampedUpdate {
        TimestampedUpdate::new(1, op)
    }

    fn weighted_diamond() -> DynGraph {
        let mut g = DynGraph::new();
        for i in 0..4 {
            g.apply(&add_node(i)).unwrap();
        }
        // 0→1 (1), 1→3 (1), 0→2 (5), 2→3 (1)
        for (id, s, t, w) in [
            (0u64, 0, 1, 1.0),
            (1, 1, 3, 1.0),
            (2, 0, 2, 5.0),
            (3, 2, 3, 1.0),
        ] {
            g.apply(&add_wrel(id, s, t, w)).unwrap();
        }
        g
    }

    #[test]
    fn static_distances() {
        let g = weighted_diamond();
        let d = sssp(&g, nid(0), Some(W));
        assert_eq!(d[&nid(0)], 0.0);
        assert_eq!(d[&nid(1)], 1.0);
        assert_eq!(d[&nid(3)], 2.0);
        assert_eq!(d[&nid(2)], 5.0);
    }

    #[test]
    fn unweighted_equals_bfs() {
        let g = weighted_diamond();
        let d = sssp(&g, nid(0), None);
        assert_eq!(d[&nid(3)], 2.0);
        assert_eq!(d[&nid(2)], 1.0);
    }

    #[test]
    fn incremental_insert_shortcut() {
        let mut g = weighted_diamond();
        let mut inc = IncrementalSssp::new(&g, nid(0), Some(W));
        let op = add_wrel(10, 0, 3, 0.5);
        g.apply(&op).unwrap();
        inc.apply_diff(&g, &[tsu(op)]);
        let want = sssp(&g, nid(0), Some(W));
        assert_eq!(inc.distances().clone(), want);
        assert_eq!(want[&nid(3)], 0.5);
    }

    #[test]
    fn incremental_delete_reroutes() {
        let mut g = weighted_diamond();
        let mut inc = IncrementalSssp::new(&g, nid(0), Some(W));
        // Remove the cheap path 1→3: distance to 3 becomes 6 via 2.
        let op = Update::DeleteRel { id: RelId::new(1) };
        g.apply(&op).unwrap();
        inc.apply_diff(&g, &[tsu(op)]);
        let want = sssp(&g, nid(0), Some(W));
        assert_eq!(inc.distances().clone(), want);
        assert_eq!(want[&nid(3)], 6.0);
    }

    #[test]
    fn weight_change_is_handled() {
        let mut g = weighted_diamond();
        let mut inc = IncrementalSssp::new(&g, nid(0), Some(W));
        // Make 0→2 cheap: distances drop.
        let op = Update::SetRelProp {
            id: RelId::new(2),
            key: W,
            value: PropertyValue::Float(0.5),
        };
        g.apply(&op).unwrap();
        inc.apply_diff(&g, &[tsu(op)]);
        let want = sssp(&g, nid(0), Some(W));
        assert_eq!(inc.distances().clone(), want);
        assert_eq!(want[&nid(2)], 0.5);
        assert_eq!(want[&nid(3)], 1.5);
    }
}
