//! # aion-suite — umbrella crate for the Aion reproduction
//!
//! A standalone Rust reimplementation of *Aion: Efficient Temporal Graph
//! Data Management* (EDBT 2024). This crate re-exports every workspace
//! member and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! ```no_run
//! use aion_suite::aion::{Aion, AionConfig};
//!
//! let db = Aion::open(AionConfig::new("./data")).unwrap();
//! let ts = db
//!     .write(|txn| txn.add_node(aion_suite::lpg::NodeId::new(1), vec![], vec![]))
//!     .unwrap();
//! let node_history = db.get_node(aion_suite::lpg::NodeId::new(1), 0, ts + 1).unwrap();
//! assert_eq!(node_history.len(), 1);
//! ```

pub use aion;
pub use aion_server;
pub use algo;
pub use baselines;
pub use btree;
pub use check;
pub use dyngraph;
pub use encoding;
pub use lineagestore;
pub use lpg;
pub use obs;
pub use pagestore;
pub use query;
pub use timestore;
pub use vfs;
pub use workload;
