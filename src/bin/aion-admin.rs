//! Operator CLI for a running Aion node (DESIGN.md §17).
//!
//! ```text
//! aion-admin status <addr>    # epoch / role / fence / latest_ts snapshot
//! aion-admin promote <addr>   # promote the replica at <addr> to primary
//! aion-admin metrics <addr>   # dump the node's metrics (Prometheus text)
//! ```
//!
//! `promote` is the manual half of failover: point it at the replica
//! that should take over after the primary dies. The server drains the
//! replica's replay queue, bumps and persists the epoch, and starts
//! shipping its own log; the command prints the new epoch. It is never
//! retried automatically — if the connection drops mid-promotion, run
//! `status` first to see whether the epoch already moved.

use aion_server::{Client, ClientConfig, NodeStatus};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: aion-admin <status|promote|metrics> <addr>\n\
         \n\
         status   print the node's epoch, role, fence state, and latest commit ts\n\
         promote  promote the replica at <addr> to primary (prints the new epoch)\n\
         metrics  dump the node's metrics in Prometheus text format"
    );
    ExitCode::from(2)
}

fn connect(addr: SocketAddr) -> std::io::Result<Client> {
    Client::connect_with(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(10),
            ..ClientConfig::default()
        },
    )
}

fn print_status(addr: SocketAddr, st: NodeStatus) {
    let role = if st.writable() {
        "primary (writable)"
    } else if st.fenced {
        "fenced (deposed primary; writes refused)"
    } else {
        "replica (read-only)"
    };
    println!("node      {addr}");
    println!("epoch     {}", st.epoch);
    println!("role      {role}");
    println!("latest_ts {}", st.latest_ts);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, addr) = match args.as_slice() {
        [cmd, addr] => (cmd.as_str(), addr),
        _ => return usage(),
    };
    let addr: SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("aion-admin: bad address {addr:?}: {e}");
            return ExitCode::from(2);
        }
    };
    let result = (|| -> std::io::Result<()> {
        let mut client = connect(addr)?;
        match cmd {
            "status" => print_status(addr, client.status()?),
            "promote" => {
                let epoch = client.promote()?;
                println!("promoted: {addr} now primary at epoch {epoch}");
            }
            "metrics" => {
                print!("{}", client.metrics()?.to_prometheus());
            }
            _ => {
                drop(client);
                std::process::exit(2);
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("aion-admin: {cmd} {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}
