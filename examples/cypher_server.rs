//! Client/server mode: temporal Cypher over the Bolt-style protocol
//! (Sec. 6.7) — the way an application would actually use Aion.
//!
//! ```text
//! cargo run --example cypher_server
//! ```

use aion::{Aion, AionConfig};
use aion_server::{Client, Server};
use query::Value;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let dir = tempfile::tempdir().expect("tempdir");
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).expect("open db"));
    let server = Server::start(db.clone())?;
    println!("server listening on {}", server.addr());

    let mut client = Client::connect(server.addr())?;
    client.ping()?;

    // Build a small social graph over the wire.
    for (id, name_, age) in [(1, "ada", 36), (2, "bob", 29), (3, "cyd", 41)] {
        client.run(
            &format!("CREATE (n:Person {{_id: {id}, name: '{name_}', age: {age}}})"),
            vec![],
        )?;
    }
    client.run(
        "MATCH (a), (b) WHERE id(a) = 1 AND id(b) = 2 CREATE (a)-[:KNOWS {_id: 1}]->(b)",
        vec![],
    )?;
    client.run(
        "MATCH (a), (b) WHERE id(a) = 2 AND id(b) = 3 CREATE (a)-[:KNOWS {_id: 2}]->(b)",
        vec![],
    )?;
    let before_update = db.latest_ts();
    client.run("MATCH (n) WHERE id(n) = 2 SET n.age = 30", vec![])?;
    db.lineage_barrier(db.latest_ts());

    // Parameterized point lookup.
    let r = client.run(
        "MATCH (n) WHERE id(n) = $id RETURN n.name, n.age",
        vec![("id".into(), Value::Int(2))],
    )?;
    println!("\nnow:   bob = {:?}", r.rows[0]);

    // Time travel over the wire.
    let r = client.run(
        &format!("USE GDB FOR SYSTEM_TIME AS OF {before_update} MATCH (n) WHERE id(n) = 2 RETURN n.name, n.age"),
        vec![],
    )?;
    println!("was:   bob = {:?}", r.rows[0]);

    // Variable-hop expansion (Fig. 1b).
    let last = db.latest_ts();
    let r = client.run(
        &format!(
            "USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n)-[*2]->(m) WHERE id(n) = 1 RETURN id(m)"
        ),
        vec![],
    )?;
    println!(
        "\nada's 2-hop neighbourhood: {:?}",
        r.rows.iter().map(|row| row[0].clone()).collect::<Vec<_>>()
    );

    // Aggregate scan.
    let r = client.run("MATCH (n:Person) RETURN count(n)", vec![])?;
    println!("person count: {}", r.rows[0][0]);
    println!("\nserver handled {} queries", server.query_count());
    Ok(())
}
