//! Replication quickstart (DESIGN.md §13): a primary ships its commit
//! log to a read replica; a replica-aware client routes writes to the
//! primary and reads to the replica with read-your-writes guaranteed by
//! the `min_watermark` staleness gate.
//!
//! ```text
//! cargo run --example replication
//! ```

use aion::{Aion, AionConfig};
use aion_server::{ClientConfig, RoutedClient, ServedBy, Server, ServerConfig};
use repl::{LogShipper, Replayer, ReplayerConfig, ShipperConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    // --- Primary: the database that accepts writes, plus a LogShipper
    // that streams its ChangeLog to any replica that connects.
    let primary_dir = tempfile::tempdir().expect("tempdir");
    let primary = Arc::new(Aion::open(AionConfig::new(primary_dir.path())).expect("open primary"));
    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default())?;
    let mut primary_srv = Server::start(primary.clone())?;
    println!(
        "primary:  queries on {}, replication on {}",
        primary_srv.addr(),
        shipper.addr()
    );

    // --- Replica: its own database, kept converging by a Replayer that
    // applies the primary's commit frames and persists a durable replay
    // watermark (crash-safe resume; see crates/repl docs).
    let replica_dir = tempfile::tempdir().expect("tempdir");
    let replica = Arc::new(Aion::open(AionConfig::new(replica_dir.path())).expect("open replica"));
    let mut replayer = Replayer::start(
        replica.clone(),
        ReplayerConfig::new(shipper.addr(), replica_dir.path()),
    );
    // Replicas serve reads through the ordinary query server, marked
    // read-only: writes are refused with a typed error.
    let mut replica_srv = Server::start_with(
        replica.clone(),
        ServerConfig {
            read_only: true,
            ..ServerConfig::default()
        },
    )?;
    println!("replica:  queries on {} (read-only)", replica_srv.addr());

    // --- A replica-aware client: writes go to the primary; reads fan
    // out to replicas, each read demanding the session's watermark so a
    // lagging replica refuses (StaleReplica) instead of serving stale
    // state, and the router falls back to the primary.
    let mut router = RoutedClient::new(
        primary_srv.addr(),
        vec![replica_srv.addr()],
        ClientConfig::default(),
    );
    for (id, name) in [(1, "ada"), (2, "bob"), (3, "cyd")] {
        router.run(
            &format!("CREATE (n:Person {{_id: {id}, name: '{name}'}})"),
            vec![],
        )?;
        // Read-your-writes: this read observes the CREATE above no
        // matter which node serves it. The guarantee is structural —
        // the entity is present; property *strings* are per-process
        // interner state (DESIGN.md §13), so match on id, not name.
        let (result, served) =
            router.run_traced(&format!("MATCH (n) WHERE id(n) = {id} RETURN n"), vec![])?;
        assert_eq!(result.rows.len(), 1, "read-your-writes for _id {id}");
        println!("read after write of _id {id}: 1 row (served by {served:?})");
    }

    // Give replication a moment, then show the replica serving reads.
    while replica.latest_ts() < primary.latest_ts() {
        std::thread::sleep(Duration::from_millis(10));
    }
    let (result, served) = router.run_traced("MATCH (n:Person) RETURN count(n)", vec![])?;
    println!(
        "count on caught-up node: {:?} (served by {served:?})",
        result.rows[0][0]
    );
    assert!(matches!(served, ServedBy::Replica(_) | ServedBy::Primary));
    // The durable watermark follows at the next batch boundary or
    // heartbeat (ShipperConfig::heartbeat_interval, 200 ms default).
    while replayer.watermark().ts < primary.latest_ts() {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "replica watermark: {:?} (primary latest_ts {})",
        replayer.watermark(),
        primary.latest_ts()
    );

    replica_srv.shutdown();
    primary_srv.shutdown();
    replayer.shutdown();
    shipper.shutdown();
    Ok(())
}
