//! Cursor pagination over the wire (DESIGN.md §16): streaming scans,
//! per-request result budgets, and resumable snapshot-pinned pages.
//!
//! ```text
//! cargo run --example paging
//! ```

use aion::{Aion, AionConfig};
use aion_server::{Client, Server, ServerConfig};
use query::Value;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let dir = tempfile::tempdir().expect("tempdir");
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).expect("open db"));
    // Arm a server-wide result budget: any single request may return at
    // most 100 rows — larger results must page.
    let server = Server::start_with(
        db.clone(),
        ServerConfig {
            max_result_rows: 100,
            ..ServerConfig::default()
        },
    )?;
    println!("server listening on {}", server.addr());

    let mut client = Client::connect(server.addr())?;
    for i in 0..500 {
        client.run(
            &format!("CREATE (n:Person {{_id: {i}, age: {}}})", 18 + i % 60),
            vec![],
        )?;
    }
    db.lineage_barrier(db.latest_ts());

    // A one-shot scan of all 500 rows trips the 100-row budget with a
    // typed error; the connection survives.
    let err = client
        .run("MATCH (n:Person) RETURN n", vec![])
        .expect_err("500 rows cannot fit a 100-row budget");
    println!("\none-shot scan: {err}");

    // Paging drains the same scan 64 rows at a time. The first page pins
    // the snapshot, so concurrent writers never tear the result; at most
    // one page is materialized at any moment.
    let mut rows = 0usize;
    let mut pages = 0usize;
    for page in client.pages("MATCH (n:Person) RETURN n", vec![], 64) {
        let page = page?;
        rows += page.rows.len();
        pages += 1;
    }
    println!("paged scan:    {rows} rows across {pages} pages of <= 64");

    // Manual cursor handling (what `pages` does under the hood) — useful
    // when pages are fetched across requests or processes.
    let first = client.run_page("MATCH (n:Person) RETURN n.age", vec![], 0, 5, None)?;
    println!(
        "manual page 1: {} rows, cursor: {} bytes",
        first.result.rows.len(),
        first.cursor.as_ref().map_or(0, Vec::len),
    );
    let second = client.run_page("MATCH (n:Person) RETURN n.age", vec![], 0, 5, first.cursor)?;
    println!("manual page 2: {:?}", second.result.rows);

    // A cursor is checksummed and fingerprinted: corruption or resuming
    // it under a different query is rejected, never mis-resumed.
    let mut bad = second.cursor.clone().expect("more pages remain");
    bad[10] ^= 0x40;
    let err = client
        .run_page("MATCH (n:Person) RETURN n.age", vec![], 0, 5, Some(bad))
        .expect_err("corrupt cursor must be rejected");
    println!("bit flip:      {err}");
    let err = client
        .run_page(
            "MATCH (n:Person) RETURN n.age LIMIT 9",
            vec![],
            0,
            5,
            second.cursor,
        )
        .expect_err("cursor minted for another query must be rejected");
    println!("wrong query:   {err}");

    // LIMIT is pushed into the stream: this touches O(3) index entries
    // even though 500 nodes exist.
    let touched = obs::counter("lineage.stream.entries_touched");
    let before = touched.get();
    let r = client.run("MATCH (n:Person) RETURN id(n) LIMIT 3", vec![])?;
    let ids: Vec<&Value> = r.rows.iter().map(|row| &row[0]).collect();
    println!(
        "LIMIT 3:       {ids:?} ({} index entries touched)",
        touched.get() - before
    );

    Ok(())
}
