//! The aviation network of the paper's Fig. 2: airports as nodes, flights
//! as relationships whose validity interval is `[departure, arrival)`.
//! Computes earliest-arrival and latest-departure temporal paths with the
//! single-scan algorithms (no joins across snapshots).
//!
//! ```text
//! cargo run --example flight_network
//! ```

use aion::{Aion, AionConfig};
use algo::{earliest_arrival, latest_departure};
use lpg::{NodeId, PropertyValue, RelId};

const AIRPORTS: [&str; 5] = ["AMS", "LHR", "JFK", "SFO", "NRT"];

fn main() -> lpg::Result<()> {
    let dir = tempfile::tempdir().expect("tempdir");
    let db = Aion::open(AionConfig::new(dir.path()))?;
    let airport = db.intern("Airport");
    let code = db.intern("code");

    // Airports exist from the start.
    for (i, name) in AIRPORTS.iter().enumerate() {
        db.write(|txn| {
            txn.add_node(
                NodeId::new(i as u64),
                vec![airport],
                vec![(code, PropertyValue::Str(db.intern(name)))],
            )
        })?;
    }

    // Flights: (id, from, to, departure, arrival). Commit timestamps model
    // the flight's validity: the relationship is inserted at departure and
    // deleted at arrival, exactly the Fig. 2 annotation.
    let flights: &[(u64, usize, usize, u64, u64)] = &[
        (0, 0, 1, 10, 12), // AMS→LHR dep 10 arr 12
        (1, 1, 2, 14, 21), // LHR→JFK dep 14 arr 21
        (2, 0, 2, 11, 20), // AMS→JFK direct, dep 11 arr 20
        (3, 2, 3, 23, 29), // JFK→SFO dep 23 arr 29
        (4, 2, 3, 21, 27), // JFK→SFO earlier, dep 21 arr 27 (tight!)
        (5, 3, 4, 30, 41), // SFO→NRT dep 30 arr 41
        (6, 1, 4, 15, 27), // LHR→NRT direct, dep 15 arr 27
    ];
    // Build the flight schedule as graph history: a flight's relationship
    // is inserted at its departure time and deleted at its arrival time,
    // committed with `write_at` so system time equals flight time — exactly
    // the Fig. 2 interval annotation.
    // (timestamp, flight id, Some(endpoints) = departure / None = arrival)
    type FlightEvent = (u64, u64, Option<(usize, usize)>);
    let mut events: Vec<FlightEvent> = Vec::new();
    for &(id, from, to, dep, arr) in flights {
        events.push((dep, id, Some((from, to))));
        events.push((arr, id, None));
    }
    events.sort();
    // Events sharing a timestamp commit in one transaction.
    let flight_label = db.intern("FLIGHT");
    for group in events.chunk_by(|a, b| a.0 == b.0) {
        let ts = group[0].0;
        db.write_at(ts, |txn| {
            for (_, id, action) in group {
                match action {
                    Some((from, to)) => txn.add_rel(
                        RelId::new(*id),
                        NodeId::new(*from as u64),
                        NodeId::new(*to as u64),
                        Some(flight_label),
                        vec![],
                    )?,
                    None => txn.delete_rel(RelId::new(*id))?,
                }
            }
            Ok(())
        })?;
    }

    let tg = db.get_temporal_graph(1, 100)?;
    println!(
        "schedule: {} airports, {} flight intervals\n",
        tg.nodes.len(),
        tg.rels.len()
    );

    // Earliest arrival from AMS starting at t=10.
    let ea = earliest_arrival(&tg, NodeId::new(0), 10);
    println!("earliest arrival from AMS (start t=10):");
    let mut sorted: Vec<_> = ea.iter().collect();
    sorted.sort_by_key(|(n, _)| n.raw());
    for (nid, at) in sorted {
        println!("  {:<4} t = {at}", AIRPORTS[nid.index()]);
    }

    // Latest departure to reach NRT by t=45.
    let ld = latest_departure(&tg, NodeId::new(4), 45);
    println!("\nlatest departure reaching NRT by t=45:");
    let mut sorted: Vec<_> = ld.iter().collect();
    sorted.sort_by_key(|(n, _)| n.raw());
    for (nid, at) in sorted {
        println!("  {:<4} leave by t = {at}", AIRPORTS[nid.index()]);
    }

    // Contrast: the graph "as of" a time point only sees in-air flights.
    let mid = db.get_graph_at(15)?;
    println!("\nsnapshot at t=15: {} flights in the air", mid.rel_count());
    Ok(())
}
