//! Mining trends over time in a social network: graph windows for
//! time-local activity (the paper's Black-Friday example) and incremental
//! PageRank across consecutive snapshots (Sec. 6.6).
//!
//! ```text
//! cargo run --example social_trends
//! ```

use aion::procedures::ExecMode;
use aion::{Aion, AionConfig};
use algo::pagerank::PageRankConfig;
use lpg::StrId;
use workload::datasets;

fn main() -> lpg::Result<()> {
    let dir = tempfile::tempdir().expect("tempdir");
    let db = Aion::open(AionConfig::new(dir.path()))?;

    // A scaled-down Pokec-shaped social network (Table 3 shape).
    let spec = datasets::by_name("Pokec").expect("dataset").scaled(0.0003);
    let w = workload::generate(spec, 2024);
    println!(
        "ingesting {}-shaped workload: {} nodes, {} rels, {} updates",
        spec.name,
        spec.nodes,
        w.rel_ids.len(),
        w.updates.len()
    );
    for (ts, ops) in w.batches(1_000) {
        // Commit at the workload's own tick so system time spans the
        // stream's event domain (bulk-load style).
        db.write_at(ts, |txn| {
            for op in &ops {
                match op {
                    lpg::Update::AddNode { id, labels, props } => {
                        txn.add_node(*id, labels.clone(), props.clone())?
                    }
                    lpg::Update::AddRel {
                        id,
                        src,
                        tgt,
                        label,
                        props,
                    } => txn.add_rel(*id, *src, *tgt, *label, props.clone())?,
                    _ => {}
                }
            }
            Ok(())
        })?;
    }
    let last = db.latest_ts();
    db.lineage_barrier(last);

    // --- Graph windows: who was active in each "week"? ---------------------
    let week = last / 5;
    println!("\nactivity windows (getWindow):");
    for i in 0..5 {
        let (lo, hi) = (1 + i * week, 1 + (i + 1) * week);
        let win = db.get_window(lo, hi)?;
        println!(
            "  window [{lo:>6}, {hi:>6}): {:>5} active nodes, {:>6} rels",
            win.node_count(),
            win.rel_count()
        );
    }

    // --- Incremental PageRank trend over 10 snapshots -----------------------
    let half = last / 2;
    let step = (last - half) / 10;
    let cfg = PageRankConfig::default();
    let series =
        db.proc_pagerank_series(cfg, half, last + 1, step.max(1), ExecMode::Incremental)?;
    println!("\ntop influencer per snapshot (incremental PageRank):");
    for (ts, ranks) in &series.points {
        if let Some((node, rank)) = ranks
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        {
            println!("  t={ts:>6}: node {node} (rank {rank:.5})");
        }
    }
    println!(
        "(total power iterations across the series: {})",
        series.work
    );

    // --- Compare with the classic recomputation ----------------------------
    let classic = db.proc_pagerank_series(cfg, half, last + 1, step.max(1), ExecMode::Classic)?;
    println!(
        "classic recomputation used {} iterations — incremental reused {:.0}% of the work",
        classic.work,
        100.0 * (1.0 - series.work as f64 / classic.work as f64)
    );

    // --- Running average of relationship weight (non-holistic aggregate) ---
    let weight = StrId::new(2); // the generator's weight property
    let avg = db.proc_avg_series(weight, half, last + 1, step.max(1), ExecMode::Incremental)?;
    println!("\nrunning AVG(weight) per snapshot:");
    for (ts, value) in avg.points.iter().take(5) {
        println!(
            "  t={ts:>6}: {:?}",
            value.map(|v| (v * 100.0).round() / 100.0)
        );
    }
    Ok(())
}
