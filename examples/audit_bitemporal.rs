//! Bitemporal auditing (Sec. 3 / 4.5): system time records *when the
//! database learned* something; application time records *when it was true
//! in the world*. The combination answers compliance questions like "what
//! did we believe on date X about the period Y?".
//!
//! ```text
//! cargo run --example audit_bitemporal
//! ```

use aion::{Aion, AionConfig};
use lpg::{NodeId, PropertyValue, TimeRange};

fn main() -> lpg::Result<()> {
    let dir = tempfile::tempdir().expect("tempdir");
    let db = Aion::open(AionConfig::new(dir.path()))?;
    let contract = db.intern("Contract");
    let value = db.intern("value");

    // Day 1 (system time t1): we record contract #1, valid in the world
    // over application time [100, 200).
    let t1 = db.write(|txn| {
        txn.add_node(
            NodeId::new(1),
            vec![contract],
            vec![(value, PropertyValue::Int(1_000))],
        )?;
        txn.set_node_app_time(NodeId::new(1), 100, 200)
    })?;

    // Day 2 (t2): a correction arrives — the contract's value was actually
    // 1200 all along. System time records when we fixed our knowledge.
    let t2 = db.write(|txn| txn.set_node_prop(NodeId::new(1), value, PropertyValue::Int(1_200)))?;

    // Day 3 (t3): a second contract valid [150, 300).
    let t3 = db.write(|txn| {
        txn.add_node(
            NodeId::new(2),
            vec![contract],
            vec![(value, PropertyValue::Int(500))],
        )?;
        txn.set_node_app_time(NodeId::new(2), 150, 300)
    })?;
    db.lineage_barrier(t3);

    println!("system timeline: recorded t={t1}, corrected t={t2}, second contract t={t3}");

    // Audit question 1: what did we believe at t1 about contract #1?
    let belief_then = db.get_node_bitemporal(
        NodeId::new(1),
        TimeRange::AsOf(t1),
        TimeRange::ContainedIn(120, 130),
    )?;
    println!(
        "\nbelief AS OF t{t1}, app time [120,130]: value = {:?}",
        belief_then[0].data.prop(value)
    );

    // Audit question 2: what do we believe now about the same period?
    let belief_now = db.get_node_bitemporal(
        NodeId::new(1),
        TimeRange::AsOf(t3),
        TimeRange::ContainedIn(120, 130),
    )?;
    println!(
        "belief AS OF t{t3}, app time [120,130]: value = {:?}  (the correction)",
        belief_now[0].data.prop(value)
    );

    // Audit question 3: which contracts were in force at world-time 250?
    println!("\ncontracts in force at application time 250 (queried now):");
    for id in [1u64, 2] {
        let hits = db.get_node_bitemporal(
            NodeId::new(id),
            TimeRange::AsOf(t3),
            TimeRange::ContainedIn(250, 250),
        )?;
        println!(
            "  contract #{id}: {}",
            if hits.is_empty() {
                "not in force"
            } else {
                "in force"
            }
        );
    }

    // The same question in temporal Cypher (Fig. 1c shape).
    let r = query::execute(
        &db,
        &format!(
            "USE GDB FOR SYSTEM_TIME AS OF {t3} MATCH (n:Contract) WHERE id(n) = 2 AND APPLICATION_TIME CONTAINED IN (250, 260) RETURN n.value"
        ),
        &query::Params::new(),
    )?;
    println!(
        "\nCypher bitemporal lookup of contract #2 value: {}",
        r.rows[0][0]
    );

    // Full system-time history of contract #1 — the audit trail itself.
    let trail = db.get_node(NodeId::new(1), 0, t3 + 1)?;
    println!("\naudit trail of contract #1 ({} versions):", trail.len());
    for v in &trail {
        println!(
            "  sys [{}, {:?}): value = {:?}",
            v.valid.start,
            v.valid.end,
            v.data.prop(value)
        );
    }
    Ok(())
}
