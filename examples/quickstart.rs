//! Quickstart: open a temporal graph database, commit a few transactions,
//! and travel through its history — the Table 1 API end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aion::{Aion, AionConfig};
use lpg::{Direction, NodeId, PropertyValue, RelId};

fn main() -> lpg::Result<()> {
    let dir = tempfile::tempdir().expect("tempdir");
    let db = Aion::open(AionConfig::new(dir.path()))?;

    // Interned vocabulary (the 4-byte string-store references of Sec. 4.2).
    let person = db.intern("Person");
    let knows = db.intern("KNOWS");
    let name = db.intern("name");
    let since = db.intern("since");

    // --- Write transactions (each gets a commit timestamp) -----------------
    let ada = NodeId::new(1);
    let bob = NodeId::new(2);
    let t1 = db.write(|txn| {
        txn.add_node(
            ada,
            vec![person],
            vec![(name, PropertyValue::Str(db.intern("Ada")))],
        )
    })?;
    let t2 = db.write(|txn| {
        txn.add_node(
            bob,
            vec![person],
            vec![(name, PropertyValue::Str(db.intern("Bob")))],
        )
    })?;
    let t3 = db.write(|txn| {
        txn.add_rel(
            RelId::new(1),
            ada,
            bob,
            Some(knows),
            vec![(since, PropertyValue::Int(2024))],
        )
    })?;
    let t4 =
        db.write(|txn| txn.set_node_prop(ada, name, PropertyValue::Str(db.intern("Ada L."))))?;
    let t5 = db.write(|txn| txn.delete_rel(RelId::new(1)))?;
    println!("committed at timestamps {t1}, {t2}, {t3}, {t4}, {t5}");
    db.lineage_barrier(t5); // wait for the background cascade (demo only)

    // --- Point queries: entity history (LineageStore) ----------------------
    let history = db.get_node(ada, 0, t5 + 1)?;
    println!("\nAda has {} versions:", history.len());
    for v in &history {
        println!(
            "  [{}, {:?})  name = {:?}",
            v.valid.start,
            v.valid.end,
            v.data.prop(name)
        );
    }

    // --- Relationship history ----------------------------------------------
    let rels = db.get_relationships(ada, Direction::Outgoing, 0, t5 + 1)?;
    println!("\nAda's outgoing relationship histories: {}", rels.len());
    for chain in &rels {
        for v in chain {
            println!(
                "  rel {} valid [{}, {})",
                v.data.id, v.valid.start, v.valid.end
            );
        }
    }

    // --- Global queries: time travel (TimeStore) ---------------------------
    let then = db.get_graph_at(t3)?;
    let now = db.latest_graph();
    println!(
        "\nat t={t3}: {} nodes / {} rels; now: {} nodes / {} rels",
        then.node_count(),
        then.rel_count(),
        now.node_count(),
        now.rel_count()
    );

    // --- Diffs and temporal graphs -----------------------------------------
    let diff = db.get_diff(t3, t5 + 1)?;
    println!("\nupdates in [{t3}, {}):", t5 + 1);
    for u in &diff {
        println!("  ts {} → {:?}", u.ts, u.op);
    }
    let tg = db.get_temporal_graph(1, t5 + 1)?;
    println!(
        "\ntemporal graph over [1, {}): {} entity versions",
        t5 + 1,
        tg.version_count()
    );

    // --- Temporal Cypher ----------------------------------------------------
    let result = query::execute(
        &db,
        &format!(
            "USE GDB FOR SYSTEM_TIME BETWEEN 1 AND {} MATCH (n) WHERE id(n) = 1 RETURN n",
            t5 + 1
        ),
        &query::Params::new(),
    )?;
    println!(
        "\ntemporal Cypher found {} versions of node 1:",
        result.rows.len()
    );
    for row in &result.rows {
        println!("  {}", row[0]);
    }
    Ok(())
}
