//! Failover quickstart (DESIGN.md §17): a primary dies mid-flight, a
//! replica is promoted with a fresh **epoch**, a routed client finds
//! the new primary by probing epochs, and the deposed primary rejoins —
//! its divergent log suffix quarantined byte-exact into an archive.
//!
//! ```text
//! cargo run --example failover
//! ```

use aion::{Aion, AionConfig};
use aion_server::{Client, ClientConfig, RoutedClient, Server, ServerConfig};
use repl::{prepare_rejoin, read_divergence_archive, ReplNode, ReplNodeConfig, ReplayerConfig};
use std::sync::Arc;
use std::time::Duration;
use vfs::VfsRef;

fn main() -> std::io::Result<()> {
    // --- Primary A: a ReplNode ties the database to its replication
    // role and to the durable epoch chain persisted next to it.
    let a_dir = tempfile::tempdir().expect("tempdir");
    let a_db = Arc::new(Aion::open(AionConfig::new(a_dir.path())).expect("open primary"));
    let node_a = ReplNode::new_primary(
        a_db.clone(),
        VfsRef::std(),
        a_dir.path(),
        ReplNodeConfig::default(),
    )?;
    let mut a_srv = Server::start(a_db.clone())?;
    println!(
        "A: primary, epoch {}, queries on {}",
        node_a.epochs().current().epoch,
        a_srv.addr()
    );

    // --- Replica B: read-only, replaying A's log. The server and the
    // role manager share one read-only flag, so promotion can open the
    // write path atomically.
    let b_dir = tempfile::tempdir().expect("tempdir");
    let b_db = Arc::new(Aion::open(AionConfig::new(b_dir.path())).expect("open replica"));
    let b_srv = Server::start_with(
        b_db.clone(),
        ServerConfig {
            read_only: true,
            ..ServerConfig::default()
        },
    )?;
    let mut node_b = ReplNode::new_replica(
        b_db.clone(),
        ReplayerConfig::new(node_a.shipper_addr().expect("shipping"), b_dir.path()),
        ReplNodeConfig::default(),
        b_srv.read_only_flag(),
    );
    println!("B: replica, queries on {} (read-only)", b_srv.addr());

    // Some replicated history, fully converged.
    let mut writer = Client::connect(a_srv.addr())?;
    for id in 1..=5 {
        writer.run(&format!("CREATE (n:Doc {{_id: {id}}})"), vec![])?;
    }
    while b_db.latest_ts() < a_db.latest_ts() {
        std::thread::sleep(Duration::from_millis(10));
    }

    // --- Disaster: the replication link dies, A acks two more commits
    // that will never ship (the divergent suffix), then A goes down.
    node_b.shutdown(); // stand-in for a severed link
    for id in [100, 101] {
        writer.run(&format!("CREATE (n:Doc {{_id: {id}}})"), vec![])?;
    }
    a_srv.shutdown();
    println!("A: crashed with 2 unshipped commits");

    // --- Promotion: drain what was replayed, bump + persist epoch 1,
    // open writes, start shipping. (In production this is
    // `aion-admin promote <addr>` against B's query server.)
    let record = node_b.promote()?;
    println!(
        "B: promoted — epoch {} forked at ts {}",
        record.epoch, record.base_ts
    );

    // --- Client-transparent rerouting: this router still thinks A is
    // the primary. The write fails over: it probes every node it knows
    // with `Status` and re-points at the highest-epoch writable one.
    let mut router = RoutedClient::new(
        a_srv.addr(), // dead
        vec![b_srv.addr()],
        ClientConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 0,
            ..ClientConfig::default()
        },
    );
    router.run("CREATE (n:Doc {_id: 200})", vec![])?;
    let (rows, served) = router.run_traced("MATCH (n) WHERE id(n) = 200 RETURN n", vec![])?;
    println!(
        "router: write + read-your-writes landed on the new primary \
         ({} row(s), served by {served:?})",
        rows.rows.len()
    );

    // --- Rejoin: with A's database closed, quarantine its divergent
    // suffix (byte-exact, checksummed) and truncate back to the fork.
    drop(node_a);
    drop(a_db);
    let vfs = VfsRef::std();
    let report = prepare_rejoin(
        &vfs,
        a_dir.path(),
        node_b.shipper_addr().expect("B ships"),
        Duration::from_secs(5),
    )?;
    let archive_path = report.archive_path.clone().expect("divergence archived");
    let archive = read_divergence_archive(&vfs, &archive_path)?;
    println!(
        "A: rejoin prep — {} divergent frame(s), {} byte(s) archived at {}",
        report.archived_frames,
        archive.bytes.len(),
        archive_path.display()
    );

    // A reopens as a replica of B: fenced against direct writes, but
    // converging on the epoch-1 timeline.
    let a_db = Arc::new(Aion::open(AionConfig::new(a_dir.path())).expect("reopen A"));
    let a_srv2 = Server::start_with(
        a_db.clone(),
        ServerConfig {
            read_only: true,
            ..ServerConfig::default()
        },
    )?;
    let node_a2 = ReplNode::new_replica(
        a_db.clone(),
        ReplayerConfig::new(node_b.shipper_addr().expect("B ships"), a_dir.path()),
        ReplNodeConfig::default(),
        a_srv2.read_only_flag(),
    );
    while a_db.latest_ts() < b_db.latest_ts() {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "A: rejoined as replica at epoch {} — converged to ts {}",
        node_a2.epochs().current().epoch,
        a_db.latest_ts()
    );

    let mut a_srv2 = a_srv2;
    a_srv2.shutdown();
    let mut b_srv = b_srv;
    b_srv.shutdown();
    drop(node_a2);
    drop(node_b);
    Ok(())
}
